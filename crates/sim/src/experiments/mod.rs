//! One module per paper table/figure. Every `run` function is
//! deterministic given its parameters and returns plain-data rows that the
//! `dtl-bench` binaries render as text and JSON.
//!
//! | Module | Paper artifact | Headline |
//! |---|---|---|
//! | [`fig01`] | Figure 1 | Azure-like committed memory averages < 50 % |
//! | [`fig02`] | Figure 2 | 8→2 ranks/channel costs ~0.7 % |
//! | [`fig05`] | Figure 5 | no rank-interleave: −1.7 % local, −1.4 % CXL |
//! | [`fig09`] | Figure 9 | ≥4 MiB strides dominate (89.3 % mixed) |
//! | [`fig10`] | Figure 10 | 61.5 % cold @2 MiB vs 33.2 % @4 MiB |
//! | [`fig11`] | Figure 11 | background ∝ ranks; active ∝ bandwidth |
//! | [`fig12`] | Figures 12–13 | −31.6 % energy at 1.6 % slowdown |
//! | [`fig14`] | Figure 14 | self-refresh adds up to ~20 % (14.9 % @8rk) |
//! | [`fig15`] | Figure 15 | stacked savings 25.6–32.3 % |
//! | [`tab04`] | Table 4 | per-workload MAPKI calibration |
//! | [`tab05`] | Table 5 | metadata sizes 384 GB vs 4 TB |
//! | [`tab06`] | Table 6 | controller 25.7→36.2 mW, 0.165→1.1 mm² |
//! | [`sec6_1`] | §6.1 | AMAT 214.2 ns (+4.2 ns), +0.18 % runtime |
//! | [`cache_pipeline`] | §5.2 methodology | Table 3 hierarchy compresses intensity, widens strides |
//! | [`sec6_6`] | §6.6 | bigger devices lose less from the DTL mapping |
//! | [`sec3_4_reentry`] | §3.4 | self-refresh re-entry needs little migration |
//! | [`fault_campaign`] | §7 outlook | fault load → capacity / energy / latency cost |
//! | [`fabric_load`] | §7 outlook | fabric contention moves the p99; packing saves port energy |
//! | [`pool_scale`] | §7 outlook | pack+coordination beats spread/no-coordination |
//! | [`pool_failover`] | §7 outlook | device retirements evacuate with zero lost AUs |
//! | [`vm_campaign`] | §7 outlook | event-driven fleet: 1000 hosts, two weeks, minutes of wall clock |
//! | [`diff_fuzz`] | soundness | device vs reference model: zero invariant violations |
//! | [`ablate_cke_powerdown`] | ablation | CKE power-down cannot match consolidation |
//! | [`ablate_hotness_params`] | ablation | profiling-threshold sensitivity |
//! | [`ablate_migration_priority`] | ablation | background migration protects latency |
//! | [`ablate_page_policy`] | ablation | open-page keeps the Figure 6 row hits |
//! | [`ablate_segment_size`] | ablation | 2 MiB balances tables vs cold capacity |
//! | [`ablate_smc`] | ablation | SMC sizing vs translation overhead |
//!
//! Every experiment is also registered behind the [`Experiment`] trait —
//! [`registry()`] returns the full set and [`find()`] resolves one by
//! name, which is what the `dtl-bench` driver and `all` binary consume.

pub mod ablate_cke_powerdown;
pub mod ablate_hotness_params;
pub mod ablate_migration_priority;
pub mod ablate_page_policy;
pub mod ablate_segment_size;
pub mod ablate_smc;
pub mod cache_pipeline;
pub mod diff_fuzz;
pub mod fabric_load;
pub mod fault_campaign;
pub mod fig01;
pub mod fig02;
pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod latency_sweep;
pub mod loaded_latency;
pub mod policy_ablation;
pub mod pool_failover;
pub mod pool_scale;
mod registry;
pub mod sec3_4_reentry;
pub mod sec6_1;
pub mod sec6_6;
pub mod tab04;
pub mod tab05;
pub mod tab06;
pub mod vm_campaign;

pub use registry::{find, registry};

use std::sync::Arc;

use dtl_core::DtlError;
use dtl_telemetry::{SloReport, TeeSink, Telemetry, TelemetrySink, TimeSeries, TimeSeriesSink};

/// Everything an [`Experiment`] needs to run: scale selection, seed and
/// worker-count overrides, the telemetry handle, and the raw argument list
/// for experiment-specific flags (`diff_fuzz --seeds`, …).
#[derive(Debug)]
pub struct RunContext {
    /// Run at reduced (`--tiny` / `--quick`) scale instead of paper scale.
    pub tiny: bool,
    /// `--seed` override; [`RunContext::seed_or`] applies the experiment's
    /// historical default when absent.
    pub seed: Option<u64>,
    /// Worker count for the [`crate::exec`] engine (`--jobs`).
    pub jobs: usize,
    /// Telemetry handle (disabled unless the driver requested tracing).
    pub telemetry: Telemetry,
    /// The raw argument list, for experiment-specific flags.
    pub args: Vec<String>,
    /// Time-series window width in picoseconds when the driver requested
    /// `--timeseries-out`; `None` disables windowed aggregation entirely.
    pub series_width: Option<u64>,
}

impl RunContext {
    /// A sequential, untraced context — what library callers and tests
    /// use.
    pub fn plain(tiny: bool) -> Self {
        RunContext {
            tiny,
            seed: None,
            jobs: 1,
            telemetry: Telemetry::disabled(),
            args: Vec::new(),
            series_width: None,
        }
    }

    /// The seed to use: the `--seed` override or the experiment's default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Whether a bare flag (e.g. `--smoke`) is present in the raw args.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following a `--flag VALUE` pair in the raw args.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The telemetry handle an event-streaming experiment should install,
    /// plus the windowed aggregator behind it when [`Self::series_width`]
    /// is set.
    ///
    /// Without a series request this is just [`Self::telemetry`]. With one,
    /// the returned handle folds every event into a fresh
    /// [`TimeSeriesSink`] — teed with the driver's sink when tracing is
    /// also on, so neither output loses events. The experiment finishes the
    /// sink at its horizon and hands the series back through
    /// [`RunOutput::timeseries`].
    pub fn series_telemetry(&self) -> (Telemetry, Option<Arc<TimeSeriesSink>>) {
        let Some(width) = self.series_width else {
            return (self.telemetry.clone(), None);
        };
        let series = Arc::new(TimeSeriesSink::new(width));
        let sink: Arc<dyn TelemetrySink> = if self.telemetry.enabled() {
            Arc::new(TeeSink::new(self.telemetry.sink().clone(), series.clone()))
        } else {
            series.clone()
        };
        let mut telemetry = Telemetry::new(sink);
        if let Some(m) = self.telemetry.metrics() {
            telemetry = telemetry.with_metrics(m.clone());
        }
        (telemetry, Some(series))
    }
}

/// What an [`Experiment`] hands back to the driver.
#[derive(Debug)]
pub struct RunOutput {
    /// Rendered text (tables plus any trailing headline lines).
    pub text: String,
    /// Machine-readable JSON for `results/<name>.json`; `None` when the
    /// run produced no result artifact (e.g. a `--replay` check).
    pub json: Option<String>,
    /// Replay horizon for closing open telemetry spans, picoseconds.
    pub horizon_ps: Option<u64>,
    /// Set when the run completed but the experiment failed its acceptance
    /// condition (the driver reports it and exits nonzero).
    pub failure: Option<String>,
    /// SLO report rendered beside the energy headline by campaign-scale
    /// experiments; `None` where the harness has no latency populations.
    pub slo: Option<SloReport>,
    /// Windowed time series when the context requested one
    /// ([`RunContext::series_width`]); the driver writes it to
    /// `--timeseries-out`.
    pub timeseries: Option<TimeSeries>,
}

impl RunOutput {
    /// The common case: text plus JSON, no horizon, no failure.
    pub fn new(text: String, json: String) -> Self {
        RunOutput {
            text,
            json: Some(json),
            horizon_ps: None,
            failure: None,
            slo: None,
            timeseries: None,
        }
    }
}

/// A named, uniformly-drivable experiment: the unit the registry hands to
/// the `dtl-bench` driver and the `all` binary. Implementations wrap the
/// typed `run`/`run_jobs` functions of their module; the trait only fixes
/// configuration defaults (paper vs tiny scale, historical seeds) and
/// rendering.
pub trait Experiment: Sync {
    /// Stable name: binary name, registry key, and `results/<name>.json`.
    fn name(&self) -> &'static str;

    /// One-line description for `all --list` output and docs.
    fn summary(&self) -> &'static str;

    /// Runs the experiment under `ctx` and renders its output.
    ///
    /// # Errors
    ///
    /// Propagates device errors; acceptance failures are reported through
    /// [`RunOutput::failure`] instead.
    fn run(&self, ctx: &RunContext) -> Result<RunOutput, DtlError>;
}
