//! **§6.1** — CXL memory access latency under DTL translation: the paper's
//! AMAT model (Equations 1–2) with both the paper's measured SMC miss
//! ratios (14.7 % / 15.4 %) and the ratios measured by replaying our mixed
//! trace through the segment mapping cache. Headline: AMAT 214.2 ns, only
//! +4.2 ns over vanilla CXL, +0.18 % execution time.

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, SegmentGeometry};
use dtl_cxl::AmatModel;
use dtl_dram::{AccessKind, Picos, PowerParams};
use dtl_trace::{Mixer, WorkloadKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// One AMAT evaluation (measured or paper ratios).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmatEval {
    /// Where the miss ratios came from.
    pub source: String,
    /// L1 SMC miss ratio.
    pub l1_miss_ratio: f64,
    /// L2 SMC miss ratio.
    pub l2_miss_ratio: f64,
    /// Translation overhead, ns.
    pub translation_ns: f64,
    /// Resulting AMAT, ns.
    pub amat_ns: f64,
    /// Execution-time inflation for a MAPKI-2 workload.
    pub exec_inflation: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec61Result {
    /// Paper-ratio and measured-ratio evaluations.
    pub evals: Vec<AmatEval>,
    /// Accesses replayed for the measured ratios.
    pub accesses: u64,
}

fn eval(source: &str, l1: f64, l2: f64) -> AmatEval {
    let mut m = AmatModel::paper(Picos::from_ns(121));
    m.l1_miss_ratio = l1;
    m.l2_miss_ratio = l2;
    AmatEval {
        source: source.to_string(),
        l1_miss_ratio: l1,
        l2_miss_ratio: l2,
        translation_ns: m.translation_overhead().as_ns_f64(),
        amat_ns: m.amat().as_ns_f64(),
        exec_inflation: m.execution_time_inflation(2.0, 1.0, 2.7, 0.08),
    }
}

/// Runs the experiment: replay a mixed trace through the device's SMC and
/// evaluate the AMAT with measured and paper ratios.
///
/// # Errors
///
/// Propagates device errors.
pub fn run(seed: u64, accesses: u64, scale: u64) -> Result<Sec61Result, DtlError> {
    let mut cfg = DtlConfig::paper();
    cfg.au_bytes = (2u64 << 30) / scale;
    let geo = SegmentGeometry { channels: 4, ranks_per_channel: 8, segs_per_rank: 6144 / scale };
    let backend = AnalyticBackend::new(geo, cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
    let mut dev = DtlDevice::new(cfg, backend);
    dev.set_powerdown_enabled(false);
    dev.set_hotness_enabled(false);
    dev.register_host(HostId(0))?;
    let capacity = geo.total_segments() * cfg.segment_bytes;
    let n_apps = 6usize;
    let per_app = (capacity * 3 / 4 / n_apps as u64 / cfg.au_bytes).max(1) * cfg.au_bytes;
    let specs: Vec<WorkloadSpec> = WorkloadKind::TRACED
        .iter()
        .cycle()
        .take(n_apps)
        .map(|k| {
            let mut s = k.spec();
            s.working_set_bytes = per_app;
            s
        })
        .collect();
    let mut mix = Mixer::new(&specs, seed);
    let mut bases = Vec::new();
    for _ in 0..n_apps {
        let vm = dev.alloc_vm(HostId(0), per_app, Picos::ZERO)?;
        bases.push(vm.hpa_base(0, cfg.au_bytes));
    }
    let mut now = Picos::from_ns(1);
    for _ in 0..accesses {
        let r = mix.next_record();
        let local = r.addr - mix.base_of(r.instance);
        let hpa = bases[r.instance as usize].offset_by(local);
        let kind = if r.is_write { AccessKind::Write } else { AccessKind::Read };
        dev.access(HostId(0), hpa, kind, now)?;
        now += Picos::from_ns(2);
    }
    let s = dev.smc_stats();
    Ok(Sec61Result {
        evals: vec![
            eval("paper", 0.147, 0.154),
            eval("measured", s.l1_miss_ratio(), s.l2_miss_ratio()),
        ],
        accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_reproduce_the_headline() {
        let r = run(3, 120_000, 64).unwrap();
        let paper = &r.evals[0];
        assert!((paper.amat_ns - 214.2).abs() < 0.6, "AMAT {}", paper.amat_ns);
        assert!((paper.translation_ns - 4.2).abs() < 0.6);
        assert!(paper.exec_inflation < 0.01, "inflation {}", paper.exec_inflation);
        let measured = &r.evals[1];
        assert!(measured.l1_miss_ratio > 0.0 && measured.l1_miss_ratio < 1.0);
        // The SMC filters the vast majority of translations: the adder
        // stays in single-digit-to-low-tens of ns even with measured
        // ratios.
        assert!(measured.translation_ns < 40.0, "measured adder {}", measured.translation_ns);
    }
}
