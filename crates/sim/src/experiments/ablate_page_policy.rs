//! **Ablation** — row-buffer policy under the DTL's rank-MSB mapping. The
//! Figure 6 layout keeps each 2 MiB segment row-buffer-friendly, which
//! only pays off under an open-page controller; closed-page (auto
//! precharge) forfeits those hits.

use serde::{Deserialize, Serialize};

use super::latency_sweep::{measure, SweepConfig};
use dtl_dram::{AddressMapping, PagePolicy};
use dtl_trace::WorkloadKind;

/// One (workload, policy) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagePolicyRow {
    /// Workload name.
    pub workload: String,
    /// "OpenPage" or "ClosedPage".
    pub policy: String,
    /// Average memory access time, ns.
    pub amat_ns: f64,
    /// Row-buffer hit fraction.
    pub row_hit_fraction: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagePolicyResult {
    /// Rows in (workload, policy) sweep order.
    pub rows: Vec<PagePolicyRow>,
}

/// The workloads the study sweeps.
pub const WORKLOADS: [WorkloadKind; 3] =
    [WorkloadKind::MediaStreaming, WorkloadKind::DataServing, WorkloadKind::GraphAnalytics];

/// Runs the sweep sequentially. Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(requests: u64) -> PagePolicyResult {
    run_jobs(requests, 1)
}

/// Runs the sweep with one worker unit per (workload, policy) cell — each
/// cell replays its own cycle-level simulator.
pub fn run_jobs(requests: u64, jobs: usize) -> PagePolicyResult {
    let mut cells = Vec::new();
    for kind in WORKLOADS {
        for policy in [PagePolicy::OpenPage, PagePolicy::ClosedPage] {
            cells.push((kind, policy));
        }
    }
    let rows = crate::exec::run_units(jobs, cells, |_, (kind, policy)| {
        let mut cfg = SweepConfig::paper(8, AddressMapping::dtl_default(), 0);
        cfg.requests = requests;
        cfg.page_policy = policy;
        let out = measure(&cfg, &kind.spec());
        PagePolicyRow {
            workload: kind.name().to_string(),
            policy: format!("{policy:?}"),
            amat_ns: out.amat.as_ns_f64(),
            row_hit_fraction: out.row_hit_fraction,
        }
    });
    PagePolicyResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_page_keeps_more_row_hits() {
        let r = run_jobs(4_000, 2);
        assert_eq!(r.rows.len(), 6);
        for pair in r.rows.chunks(2) {
            let (open, closed) = (&pair[0], &pair[1]);
            assert_eq!(open.workload, closed.workload);
            assert!(
                open.row_hit_fraction >= closed.row_hit_fraction,
                "open page must not lose row hits: {open:?} vs {closed:?}"
            );
        }
    }
}
