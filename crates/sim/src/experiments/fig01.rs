//! **Figure 1** — memory usage profiling of Azure-like VM schedules: the
//! committed memory of a 48-vCPU / 384 GB node averages below 50 %.

use dtl_trace::{NodeConfig, UsageSample, VmSchedule};
use serde::{Deserialize, Serialize};

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig01Result {
    /// Usage samples every 5 minutes.
    pub series: Vec<UsageSample>,
    /// Mean committed fraction of node memory.
    pub average_fraction: f64,
    /// Peak committed fraction.
    pub peak_fraction: f64,
    /// VMs scheduled over the window.
    pub vm_count: usize,
}

/// Runs the experiment: synthesize and profile a 6-hour schedule.
pub fn run(seed: u64) -> Fig01Result {
    let node = NodeConfig::paper();
    let schedule = VmSchedule::synthesize(seed, node, 360);
    let series = schedule.usage_series(5);
    let average_fraction = schedule.average_usage_fraction();
    let peak_fraction =
        series.iter().map(|s| s.mem_bytes as f64 / node.mem_bytes as f64).fold(0.0, f64::max);
    Fig01Result { vm_count: schedule.vm_count(), series, average_fraction, peak_fraction }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_below_half_average_usage() {
        let r = run(1);
        assert!(r.average_fraction < 0.5, "paper headline: <50%, got {}", r.average_fraction);
        assert!(r.peak_fraction <= 1.0);
        assert!(r.vm_count > 50);
        assert_eq!(r.series.len(), 73);
    }
}
