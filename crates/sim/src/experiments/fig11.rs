//! **Figure 11** — the DRAM power model: (a) background power versus the
//! number of active ranks per channel, and (b) active power scaling
//! linearly with bandwidth utilization.
//!
//! The paper measures these on its server and uses them to build the
//! §5.1 power estimator; here they are produced by the same energy model
//! the full-system simulation uses, closing the loop.

use dtl_dram::{PowerParams, PowerState};
use serde::{Deserialize, Serialize};

/// One point of Figure 11(a): background power at a rank count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackgroundPoint {
    /// Active ranks per channel (the rest are in MPSM).
    pub active_ranks: u32,
    /// Background power normalized to the all-active configuration.
    pub normalized_power: f64,
}

/// One point of Figure 11(b): active power at a bandwidth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ActivePoint {
    /// Bandwidth utilization of one rank, bytes/s.
    pub bandwidth: f64,
    /// Active power, milliwatts.
    pub active_mw: f64,
    /// Power-to-bandwidth ratio, mW per GB/s.
    pub mw_per_gbps: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Figure 11(a) series for 2/4/6/8 active ranks of 8.
    pub background: Vec<BackgroundPoint>,
    /// Figure 11(b) series over a bandwidth sweep.
    pub active: Vec<ActivePoint>,
}

/// Runs the model.
pub fn run() -> Fig11Result {
    let p = PowerParams::ddr4_128gb_dimm();
    let total_ranks = 8u32;
    let all_active = f64::from(total_ranks) * p.background_mw(PowerState::Standby);
    let background = [2u32, 4, 6, 8]
        .iter()
        .map(|&n| {
            let power = f64::from(n) * p.background_mw(PowerState::Standby)
                + f64::from(total_ranks - n) * p.background_mw(PowerState::Mpsm);
            BackgroundPoint { active_ranks: n, normalized_power: power / all_active }
        })
        .collect();
    // Active power: reads+writes at the given line rate (2:1 read:write),
    // one ACT per four accesses.
    let active = (1..=8)
        .map(|i| {
            let bandwidth = i as f64 * 2.9e9; // up to ~23 GB/s
            let lines_per_s = bandwidth / 64.0;
            let read_w = lines_per_s * (2.0 / 3.0) * p.read_nj * 1e-9;
            let write_w = lines_per_s * (1.0 / 3.0) * p.write_nj * 1e-9;
            let act_w = lines_per_s / 4.0 * p.act_pre_nj * 1e-9;
            let active_mw = (read_w + write_w + act_w) * 1000.0;
            ActivePoint { bandwidth, active_mw, mw_per_gbps: active_mw / (bandwidth / 1e9) }
        })
        .collect();
    Fig11Result { background, active }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_scales_near_linearly_with_rank_count() {
        let r = run();
        assert_eq!(r.background.len(), 4);
        // 2 of 8 ranks active: 2/8 + 6/8*0.068 = 0.301.
        let two = r.background[0].normalized_power;
        assert!((two - 0.301).abs() < 0.005, "2-rank normalized {two}");
        let eight = r.background[3].normalized_power;
        assert!((eight - 1.0).abs() < 1e-12);
        // Monotone increasing.
        assert!(r.background.windows(2).all(|w| w[0].normalized_power < w[1].normalized_power));
    }

    #[test]
    fn active_power_is_linear_in_bandwidth() {
        let r = run();
        let ratios: Vec<f64> = r.active.iter().map(|p| p.mw_per_gbps).collect();
        let first = ratios[0];
        for q in &ratios {
            assert!((q - first).abs() / first < 1e-9, "ratio drifted: {q} vs {first}");
        }
        assert!(r.active.windows(2).all(|w| w[0].active_mw < w[1].active_mw));
    }
}
