//! **Table 5** — sizes of the DTL data structures for a 384 GB and a 4 TB
//! CXL device supporting 16 hosts.

use dtl_core::{OverheadConfig, StructureSizes};
use serde::{Deserialize, Serialize};

/// One device sizing column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab05Column {
    /// Capacity label.
    pub label: String,
    /// Computed sizes.
    pub sizes: StructureSizes,
    /// Total on-chip SRAM, bytes.
    pub sram_total: u64,
    /// Total reserved-DRAM metadata, bytes.
    pub dram_total: u64,
    /// Metadata as a fraction of device capacity.
    pub metadata_fraction: f64,
}

/// Full result: both capacities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab05Result {
    /// 384 GB and 4 TB columns.
    pub columns: Vec<Tab05Column>,
}

/// Computes the table.
pub fn run() -> Tab05Result {
    let columns = [("384GB", OverheadConfig::paper_384gb()), ("4TB", OverheadConfig::paper_4tb())]
        .into_iter()
        .map(|(label, cfg)| {
            let sizes = StructureSizes::compute(&cfg);
            Tab05Column {
                label: label.to_string(),
                sram_total: sizes.sram_total(),
                dram_total: sizes.dram_total(),
                metadata_fraction: sizes.dram_total() as f64 / cfg.capacity_bytes as f64,
                sizes,
            }
        })
        .collect();
    Tab05Result { columns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_headlines() {
        let r = run();
        assert_eq!(r.columns.len(), 2);
        let small = &r.columns[0];
        let big = &r.columns[1];
        // Paper: SRAM 0.5 MB -> 5.3 MB; DRAM 1.9 MB -> 22.6 MB; 4 TB
        // metadata is ~0.0005% of capacity.
        assert!((small.sram_total as f64 / (1 << 20) as f64 - 0.5).abs() < 0.2);
        assert!((big.sram_total as f64 / (1 << 20) as f64 - 5.3).abs() < 1.5);
        assert!(big.metadata_fraction < 1e-5);
        assert!(big.dram_total > small.dram_total);
    }
}
