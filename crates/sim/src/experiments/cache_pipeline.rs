//! **Methodology validation** — the paper's trace pipeline (§5.2): raw
//! core-side access streams filtered through the Table 3 cache hierarchy
//! become the post-cache streams the DTL observes. This experiment runs
//! that pipeline end-to-end and checks the two properties the
//! reproduction's direct post-cache generators rely on:
//!
//! 1. the hierarchy compresses access intensity by close to an order of
//!    magnitude (toward CloudSuite's low post-LLC MAPKI, Table 4);
//! 2. the stream that escapes the caches still carries a substantial
//!    long-stride (≥ 4 MiB) component — the Figure 9 premise that lets the
//!    DTL interleave channels at segment granularity.

use dtl_cache::{CacheHierarchy, HierarchyConfig};
use dtl_trace::{StrideHistogram, TraceGen, WorkloadKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One workload's pipeline measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineRow {
    /// Workload name.
    pub workload: String,
    /// Core-side accesses per kilo-instruction fed into the hierarchy.
    pub raw_apki: f64,
    /// Post-cache memory accesses per kilo-instruction.
    pub post_mapki: f64,
    /// L1 / L2 / LLC miss ratios.
    pub miss_ratios: (f64, f64, f64),
    /// Fraction of strides >= 4 MiB before the caches.
    pub pre_at_least_4m: f64,
    /// Fraction of strides >= 4 MiB after the caches.
    pub post_at_least_4m: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachePipelineResult {
    /// One row per workload.
    pub rows: Vec<PipelineRow>,
}

/// Runs the pipeline for a set of workloads. The raw stream combines the
/// workload's segment-level structure with core-side line reuse (a skewed
/// recency buffer, ~88 % of loads/stores re-touch recent lines) at
/// core-side intensity (~300 accesses per kilo-instruction — roughly one
/// load/store per three instructions).
pub fn run(seed: u64, records: usize, workloads: &[WorkloadKind]) -> CachePipelineResult {
    run_jobs(seed, records, workloads, 1)
}

/// Like [`run`], with one worker unit per workload — every workload owns
/// its own generator, RNG, recency buffer, and hierarchy, so the sharding
/// is exact.
pub fn run_jobs(
    seed: u64,
    records: usize,
    workloads: &[WorkloadKind],
    jobs: usize,
) -> CachePipelineResult {
    const RAW_APKI: f64 = 300.0;
    const REUSE_PROB: f64 = 0.88;
    const RECENCY_LINES: usize = 16 * 1024; // spans L2, inside the LLC
    let rows = crate::exec::run_units(jobs, workloads.to_vec(), |_, kind| {
        let spec = kind.spec().scaled(64);
        let mut gen = TraceGen::new(spec, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xcafe);
        let mut recent: VecDeque<(u64, bool)> = VecDeque::with_capacity(RECENCY_LINES);
        let mut hierarchy = CacheHierarchy::new(HierarchyConfig::paper_table3());
        let mut pre = StrideHistogram::new();
        let mut post = StrideHistogram::new();
        let mut post_count = 0u64;
        for _ in 0..records {
            let (addr, is_write) = if !recent.is_empty() && rng.gen::<f64>() < REUSE_PROB {
                // Skewed toward the most recent lines (classic core-side
                // temporal locality).
                let u: f64 = rng.gen();
                let idx = ((u * u) * recent.len() as f64) as usize;
                recent[recent.len() - 1 - idx.min(recent.len() - 1)]
            } else {
                let r = gen.next_record();
                if recent.len() == RECENCY_LINES {
                    recent.pop_front();
                }
                recent.push_back((r.addr, r.is_write));
                (r.addr, r.is_write)
            };
            pre.observe(addr);
            for m in hierarchy.access(addr, is_write) {
                post.observe(m.addr);
                post_count += 1;
            }
        }
        let instr_total = records as f64 * 1000.0 / RAW_APKI;
        let (l1, l2, llc) = hierarchy.miss_ratios();
        PipelineRow {
            workload: kind.name().to_string(),
            raw_apki: RAW_APKI,
            post_mapki: post_count as f64 * 1000.0 / instr_total,
            miss_ratios: (l1, l2, llc),
            pre_at_least_4m: pre.fraction_at_least_4m(),
            post_at_least_4m: post.fraction_at_least_4m(),
        }
    });
    CachePipelineResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_compress_intensity_and_widen_strides() {
        let r = run(7, 300_000, &[WorkloadKind::DataServing, WorkloadKind::WebSearch]);
        for row in &r.rows {
            // Order-of-magnitude compression: ~300 raw APKI down to tens
            // at most (real CloudSuite reaches single digits with full-size
            // working sets and long traces).
            assert!(row.raw_apki > 200.0, "{}: raw {}", row.workload, row.raw_apki);
            assert!(
                row.post_mapki < row.raw_apki / 4.0,
                "{}: post {} vs raw {}",
                row.workload,
                row.post_mapki,
                row.raw_apki
            );
            // The post-cache stream keeps a substantial long-stride tail.
            assert!(
                row.post_at_least_4m > 0.2,
                "{}: post-cache >=4MiB fraction {}",
                row.workload,
                row.post_at_least_4m
            );
            let (l1, l2, _llc) = row.miss_ratios;
            assert!(l1 > 0.0 && l1 < 1.0);
            assert!(l2 > 0.0);
        }
    }
}
