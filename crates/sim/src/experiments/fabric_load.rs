//! **Fabric load** (disaggregation extension, paper §7 outlook) — sweep
//! offered load through a dual-switch CXL fabric under both topology-aware
//! placements (pack-under-one-switch vs spread-across-switches) and report
//! how port contention moves the access p99 next to the switch-port and
//! DRAM energy headlines. The tiny sweep is the CI cell; the paper sweep
//! widens the fabric to four hosts and eight devices.

use serde::{Deserialize, Serialize};

use crate::{
    run_fabric_cell, run_fabric_cell_observed, FabricCellResult, FabricRunConfig, Heartbeat,
    RunObservations,
};
use dtl_core::DtlError;
use dtl_pool::PlacementPolicy;

/// The two placement variants, swept in this order. The first is the
/// headline and the only one traced.
pub const VARIANTS: [PlacementPolicy; 2] =
    [PlacementPolicy::PackForPower, PlacementPolicy::SpreadForBandwidth];

/// Tiny burst ladder (accesses per VM per window). Geometric ~4× spacing:
/// the latency histogram is log₂-bucketed, so each step must push the p99
/// past at least one bucket boundary to read as a strict increase.
pub const BURSTS_TINY: [u64; 4] = [32, 128, 512, 2048];

/// Paper-scale burst ladder.
pub const BURSTS_PAPER: [u64; 4] = [64, 256, 1024, 4096];

/// Combined result of the placement × load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricLoadResult {
    /// One cell per (placement, burst) pair, placement-major in
    /// [`VARIANTS`] × ladder order.
    pub cells: Vec<FabricCellResult>,
}

impl FabricLoadResult {
    /// Cells of one placement variant, in ladder order.
    pub fn placement_cells(&self, placement: PlacementPolicy) -> Vec<&FabricCellResult> {
        self.cells.iter().filter(|c| c.placement == placement).collect()
    }

    /// Whether each placement's access p99 rises strictly with the ladder.
    pub fn p99_monotone(&self) -> bool {
        VARIANTS.iter().all(|&p| {
            let cells = self.placement_cells(p);
            cells.windows(2).all(|w| w[1].access_p99_ps > w[0].access_p99_ps)
        })
    }

    /// Switch-port energy advantage of packing at the lightest load:
    /// `spread - pack` in millijoules (positive means pack wins).
    pub fn pack_energy_edge_mj(&self) -> f64 {
        let pack = self.placement_cells(PlacementPolicy::PackForPower);
        let spread = self.placement_cells(PlacementPolicy::SpreadForBandwidth);
        match (pack.first(), spread.first()) {
            (Some(p), Some(s)) => s.switch_port_energy_mj - p.switch_port_energy_mj,
            _ => 0.0,
        }
    }
}

/// The swept burst ladder for a base cell configuration.
pub fn ladder(cfg: &FabricRunConfig) -> [u64; 4] {
    if cfg.paper_scale {
        BURSTS_PAPER
    } else {
        BURSTS_TINY
    }
}

/// Runs the full placement × load sweep sequentially.
///
/// # Errors
///
/// Propagates pool/device errors from any cell.
pub fn run(cfg: &FabricRunConfig) -> Result<FabricLoadResult, DtlError> {
    run_jobs_traced(cfg, &dtl_telemetry::Telemetry::disabled(), 1)
}

/// Like [`run`], with the cells as parallel work units. Only the first
/// (pack, lightest-load) cell records telemetry — the cells are
/// independent fabrics whose timelines would not compose into one trace;
/// per-unit buffers merge back in unit order, so the emitted trace and the
/// result are bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates pool/device errors from any cell.
pub fn run_jobs_traced(
    cfg: &FabricRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
) -> Result<FabricLoadResult, DtlError> {
    run_jobs_observed(cfg, telemetry, jobs, &Heartbeat::disabled()).map(|(result, _)| result)
}

/// Like [`run_jobs_traced`], additionally returning the **headline**
/// cell's out-of-band [`RunObservations`] (SLO report including the
/// fabric-queue population, plus event-spine queue counters). The
/// heartbeat ticks once per completed cell.
///
/// # Errors
///
/// Propagates pool/device errors from any cell.
pub fn run_jobs_observed(
    cfg: &FabricRunConfig,
    telemetry: &dtl_telemetry::Telemetry,
    jobs: usize,
    heartbeat: &Heartbeat,
) -> Result<(FabricLoadResult, RunObservations), DtlError> {
    let bursts = ladder(cfg);
    let mut units = Vec::with_capacity(VARIANTS.len() * bursts.len());
    for placement in VARIANTS {
        for burst in bursts {
            units.push((placement, burst));
        }
    }
    let total_units = units.len() as u64;
    let outcomes =
        crate::exec::run_units_traced(jobs, telemetry, units, |i, (placement, burst), t| {
            let mut cell = *cfg;
            cell.placement = placement;
            cell.burst = burst;
            let (result, obs) = if i == 0 {
                run_fabric_cell_observed(&cell, t).map(|(r, o)| (r, Some(o)))?
            } else {
                (run_fabric_cell(&cell)?, None)
            };
            heartbeat.tick(total_units);
            Ok::<_, DtlError>((result, obs))
        });
    let mut cells = Vec::with_capacity(total_units as usize);
    let mut headline_obs = RunObservations::default();
    for outcome in outcomes {
        let (cell, obs) = outcome?;
        if let Some(obs) = obs {
            headline_obs = obs;
        }
        cells.push(cell);
    }
    Ok((FabricLoadResult { cells }, headline_obs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FabricRunConfig {
        let mut cfg = FabricRunConfig::tiny(7);
        cfg.windows = 6;
        cfg
    }

    #[test]
    fn tail_latency_rises_and_pack_wins_on_port_energy() {
        let r = run(&quick()).unwrap();
        assert_eq!(r.cells.len(), VARIANTS.len() * BURSTS_TINY.len());
        assert!(r.p99_monotone(), "{:#?}", r.cells);
        assert!(r.pack_energy_edge_mj() > 0.0, "{:#?}", r.cells);
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let cfg = quick();
        let a = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 1).unwrap();
        let b = run_jobs_traced(&cfg, &dtl_telemetry::Telemetry::disabled(), 4).unwrap();
        assert_eq!(a, b);
    }
}
