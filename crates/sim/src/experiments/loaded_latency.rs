//! **Model validation** — loaded latency: the analytic M/D/1-shaped curve
//! of [`dtl_cxl::LoadedLatencyModel`] against the cycle-level simulator's
//! measured latency at increasing bandwidth. The curves must agree on the
//! idle latency, grow together, and the simulator must saturate near the
//! model's sustainable bandwidth.

use dtl_cxl::LoadedLatencyModel;
use dtl_dram::{
    AccessKind, AddressMapping, DramConfig, DramSystem, Geometry, PhysAddr, Picos, Priority,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One utilization point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered bandwidth, bytes/s (single channel).
    pub offered: f64,
    /// Measured mean latency from the cycle simulator, ns.
    pub measured_ns: f64,
    /// Model-predicted latency, ns (None past the sustainable point).
    pub predicted_ns: Option<f64>,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadedLatencyResult {
    /// The sweep, in increasing load.
    pub points: Vec<LoadPoint>,
    /// The model used.
    pub model: LoadedLatencyModel,
}

/// Sweeps offered load on a single channel with random (row-miss-heavy)
/// traffic and compares the measured mean latency against the model.
/// Equivalent to [`run_jobs`] at `jobs = 1`.
pub fn run(seed: u64, requests_per_point: u64) -> LoadedLatencyResult {
    run_jobs(seed, requests_per_point, 1)
}

/// Like [`run`], with one worker unit per utilization point — every point
/// builds its own simulator and reseeds its own RNG from `seed`, exactly
/// as the sequential sweep does.
pub fn run_jobs(seed: u64, requests_per_point: u64, jobs: usize) -> LoadedLatencyResult {
    let geometry = Geometry { channels: 1, ranks_per_channel: 4, ..Geometry::cxl_1tb() };
    let model = LoadedLatencyModel::ddr4_2933_channel(Picos::ZERO);
    let points = crate::exec::run_units(jobs, vec![5u32, 15, 30, 45, 60, 75], |_, pct| {
        let offered = model.sustainable_bandwidth() * f64::from(pct) / 100.0;
        let mut sys = DramSystem::new(
            DramConfig { geometry, ..DramConfig::cxl_1tb_ddr4_2933() },
            AddressMapping::RankInterleaved,
        )
        .expect("valid geometry");
        let mut rng = SmallRng::seed_from_u64(seed);
        let gap_ps = 64.0 / offered * 1e12;
        let mut t = Picos::ZERO;
        let footprint = geometry.capacity_bytes();
        for _ in 0..requests_per_point {
            let u: f64 = rng.gen_range(1e-9..1.0f64);
            t += Picos::from_ps(((-u.ln()) * gap_ps).max(1.0) as u64);
            let addr = rng.gen_range(0..footprint / 64) * 64;
            sys.submit(PhysAddr::new(addr), AccessKind::Read, Priority::Foreground, t)
                .expect("in range");
            if sys.pending() > 512 {
                sys.advance_to(t);
            }
        }
        sys.run_until_idle(Picos::from_us(10));
        LoadPoint {
            offered,
            measured_ns: sys.foreground_stats().mean().as_ns_f64(),
            predicted_ns: model.latency_at(offered).map(|l| l.as_ns_f64()),
        }
    });
    LoadedLatencyResult { points, model }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_and_model_agree_on_shape() {
        let r = run(3, 4_000);
        // Monotone growth in both.
        for w in r.points.windows(2) {
            assert!(
                w[1].measured_ns >= w[0].measured_ns * 0.95,
                "measured must not fall with load: {:?}",
                w
            );
        }
        // At light load the measured latency sits in the idle band
        // (row-miss service, tens of ns).
        let light = &r.points[0];
        assert!(light.measured_ns > 20.0 && light.measured_ns < 120.0, "{light:?}");
        // At 75% load, queueing is visible in both model and measurement.
        let heavy = r.points.last().unwrap();
        assert!(heavy.measured_ns > light.measured_ns);
        assert!(heavy.predicted_ns.unwrap() > r.points[0].predicted_ns.unwrap());
    }
}
