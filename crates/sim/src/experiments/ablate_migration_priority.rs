//! **Ablation** — migration scheduling priority (the paper's §4.2 decision
//! that the migration queue issues only when the foreground queue is
//! empty).
//!
//! Replays a foreground stream against the cycle-accurate DRAM simulator
//! while a segment migration runs, with the migration traffic classed as
//! (a) strict-background (the paper's design) and (b) same-priority
//! foreground traffic. The foreground latency difference is the cost the
//! paper's design avoids.

use serde::{Deserialize, Serialize};

use dtl_dram::{AccessKind, AddressMapping, DramConfig, DramSystem, PhysAddr, Picos, Priority};
use dtl_trace::{TraceGen, WorkloadKind};

/// One policy's foreground latency under a concurrent migration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriorityRow {
    /// "background (paper)" or "same-priority".
    pub policy: String,
    /// Mean foreground latency, ns.
    pub fg_mean_ns: f64,
    /// Worst foreground latency, ns.
    pub fg_max_ns: f64,
    /// Migration bytes in flight.
    pub migration_bytes: u64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriorityResult {
    /// Background-priority row first, same-priority second.
    pub rows: Vec<PriorityRow>,
}

impl PriorityResult {
    /// Mean foreground latency the paper's policy avoids, ns.
    pub fn delta_ns(&self) -> f64 {
        self.rows[1].fg_mean_ns - self.rows[0].fg_mean_ns
    }
}

fn run_one(policy_background: bool, requests: u64) -> PriorityRow {
    let mut sys = DramSystem::new(DramConfig::tiny(), AddressMapping::dtl_default()).unwrap();
    let cap = sys.config().geometry.capacity_bytes();
    let mut gen = TraceGen::new(WorkloadKind::DataServing.spec().scaled(512), 1);
    // A 256 KiB "segment migration": reads from one region, writes to
    // another, issued up front.
    let seg = 256u64 << 10;
    let mig_priority = if policy_background { Priority::Migration } else { Priority::Foreground };
    for i in 0..(seg / 64) {
        sys.submit(
            PhysAddr::new((cap / 2 + i * 64) % cap),
            AccessKind::Read,
            mig_priority,
            Picos::ZERO,
        )
        .unwrap();
        sys.submit(
            PhysAddr::new((cap / 2 + seg + i * 64) % cap),
            AccessKind::Write,
            mig_priority,
            Picos::ZERO,
        )
        .unwrap();
    }
    // Foreground stream at a moderate rate.
    let mut t = Picos::ZERO;
    let mut fg_ids = std::collections::HashSet::new();
    for _ in 0..requests {
        let r = gen.next_record();
        t += Picos::from_ns(50);
        let id = sys
            .submit(
                PhysAddr::new(r.addr % (cap / 2)),
                if r.is_write { AccessKind::Write } else { AccessKind::Read },
                Priority::Foreground,
                t,
            )
            .unwrap();
        fg_ids.insert(id);
        if sys.pending() > 1024 {
            sys.advance_to(t);
        }
    }
    sys.run_until_idle(Picos::from_us(10));
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0u64;
    for c in sys.drain_completions() {
        if fg_ids.contains(&c.id) {
            let l = c.latency().as_ns_f64();
            sum += l;
            max = max.max(l);
            n += 1;
        }
    }
    PriorityRow {
        policy: if policy_background {
            "background (paper)".into()
        } else {
            "same-priority".into()
        },
        fg_mean_ns: sum / n as f64,
        fg_max_ns: max,
        migration_bytes: seg * 2,
    }
}

/// Runs both policies sequentially. Equivalent to [`run_jobs`] at
/// `jobs = 1`.
pub fn run(requests: u64) -> PriorityResult {
    run_jobs(requests, 1)
}

/// Runs the two policy replays as independent units (each owns its own
/// simulator and trace generator).
pub fn run_jobs(requests: u64, jobs: usize) -> PriorityResult {
    let rows = crate::exec::run_units(jobs, vec![true, false], |_, background| {
        run_one(background, requests)
    });
    PriorityResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_migration_protects_foreground_latency() {
        let r = run_jobs(4_000, 2);
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[0].policy.contains("background"));
        assert!(
            r.delta_ns() > -1.0,
            "same-priority migration must not beat strict background: {:?}",
            r.rows
        );
    }
}
