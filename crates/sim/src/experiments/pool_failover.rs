//! **Pool failover** (rack-scale reliability, paper §7 outlook) — a batch
//! of seeded device-retirement campaigns against the pool: each campaign
//! replays the VM schedule while the fault plan retires one or two whole
//! devices mid-run (on top of background ECC noise and link CRC
//! corruption), and a reachability sweep after every retirement plus at
//! the end counts allocation units no access can reach. The acceptance
//! criterion is zero lost AUs across the whole batch.

use serde::{Deserialize, Serialize};

use crate::exec::derive_seed;
use crate::{run_pool_faulted, PoolFaultRunConfig, PoolFaultRunResult, PoolRunConfig};
use dtl_core::DtlError;

/// One seeded retirement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailoverCampaign {
    /// Derived campaign seed (schedule and fault plan).
    pub seed: u64,
    /// Whole-device retirements scheduled.
    pub retirements: u16,
    /// The faulted replay outcome.
    pub result: PoolFaultRunResult,
}

/// Result of the campaign batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolFailoverResult {
    /// One entry per campaign, in seed-derivation order.
    pub campaigns: Vec<FailoverCampaign>,
    /// Allocation units lost across every campaign — must be zero.
    pub total_lost_aus: u64,
    /// Devices retired across every campaign.
    pub total_devices_retired: u64,
    /// Health-driven failovers tripped across every campaign.
    pub total_failovers: u64,
    /// Shard evacuations completed across every campaign.
    pub total_evacuations: u64,
    /// Segments moved by those evacuations.
    pub total_segments_evacuated: u64,
}

/// Runs `campaigns` retirement campaigns sequentially. Campaign `i` uses
/// the SplitMix64-derived seed `derive_seed(base.seed, i)` and schedules
/// `1 + i % 2` retirements, so the batch alternates single and double
/// device losses.
///
/// # Errors
///
/// Propagates pool/device errors; an invariant violation after any
/// injected fault fails its campaign and the batch.
pub fn run(base: &PoolRunConfig, campaigns: u64) -> Result<PoolFailoverResult, DtlError> {
    run_jobs(base, campaigns, 1)
}

/// Like [`run`], with the campaigns as parallel work units sharded across
/// `jobs` workers. Campaigns are independent replays; results assemble in
/// campaign order, so the output is bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates pool/device errors; an invariant violation after any
/// injected fault fails its campaign and the batch.
pub fn run_jobs(
    base: &PoolRunConfig,
    campaigns: u64,
    jobs: usize,
) -> Result<PoolFailoverResult, DtlError> {
    let units: Vec<u64> = (0..campaigns).collect();
    let outcomes = crate::exec::run_units(jobs, units, |_, i| {
        let seed = derive_seed(base.seed, i);
        let retirements = 1 + (i % 2) as u16;
        let mut run = *base;
        run.seed = seed;
        let cfg = PoolFaultRunConfig::retirement_campaign(seed, run, retirements);
        let result = run_pool_faulted(&cfg)?;
        Ok::<_, DtlError>(FailoverCampaign { seed, retirements, result })
    });
    let mut out = PoolFailoverResult {
        campaigns: Vec::with_capacity(campaigns as usize),
        total_lost_aus: 0,
        total_devices_retired: 0,
        total_failovers: 0,
        total_evacuations: 0,
        total_segments_evacuated: 0,
    };
    for outcome in outcomes {
        let c = outcome?;
        out.total_lost_aus += c.result.lost_aus;
        out.total_devices_retired += c.result.devices_retired;
        out.total_failovers += c.result.failovers;
        out.total_evacuations += c.result.evacuations_completed;
        out.total_segments_evacuated += c.result.segments_evacuated;
        out.campaigns.push(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_loses_nothing() {
        let r = run(&PoolRunConfig::tiny(7), 3).unwrap();
        assert_eq!(r.campaigns.len(), 3);
        assert_eq!(r.total_lost_aus, 0, "no allocation unit may ever be lost");
        assert_eq!(r.total_devices_retired, 1 + 2 + 1, "alternating 1/2 retirements");
        assert!(r.total_evacuations > 0, "retirements force evacuations");
        // Distinct derived seeds.
        assert_ne!(r.campaigns[0].seed, r.campaigns[1].seed);
    }

    #[test]
    fn jobs_do_not_change_the_batch() {
        let base = PoolRunConfig::tiny(5);
        let a = run_jobs(&base, 2, 1).unwrap();
        let b = run_jobs(&base, 2, 2).unwrap();
        assert_eq!(a, b);
    }
}
