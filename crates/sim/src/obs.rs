//! Out-of-band observability bundles the campaign harnesses return
//! **beside** their frozen result structs.
//!
//! The serialized results (`PoolRunResult`, `FaultRunResult`,
//! `VmCampaignResult`, …) are pinned by goldens and replay tooling, so new
//! observability never lands inside them. Instead each campaign harness
//! grows an `*_observed` variant returning its plain result plus a
//! [`RunObservations`]: the SLO report and the event-spine queue counters,
//! which the experiment registry renders and exports without touching a
//! golden byte.

use dtl_event::QueueStats;
use dtl_telemetry::{MetricsRegistry, SloReport};

/// What a campaign replay observed about itself, out-of-band from its
/// serialized result.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunObservations {
    /// Latency/backlog SLO populations the harness instruments.
    pub slo: SloReport,
    /// Event-spine queue counters, summed over every simulation the run
    /// drove (per-epoch spines, per-host spines).
    pub queue: QueueStats,
}

/// Dumps event-spine queue counters into a metrics registry under the
/// `sim.queue.*` namespace.
///
/// Counts use `set` (the stats are already totals); when per-unit
/// registries later merge, counts sum and only one unit exports per run,
/// so the merged dump equals the sequential one.
pub fn export_queue_metrics(m: &MetricsRegistry, qs: &QueueStats) {
    m.counter("sim.queue.posted").set(qs.posted);
    m.counter("sim.queue.cancelled").set(qs.cancelled);
    m.counter("sim.queue.popped").set(qs.popped);
    m.counter("sim.queue.depth_high_water").set(qs.depth_high_water);
    m.counter("sim.queue.tombstones_high_water").set(qs.tombstones_high_water);
    m.counter("sim.queue.tombstone_ratio_ppm").set((qs.tombstone_ratio() * 1e6) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_metrics_land_under_the_sim_namespace() {
        let m = MetricsRegistry::new();
        let qs = QueueStats {
            posted: 10,
            cancelled: 4,
            popped: 6,
            depth_high_water: 3,
            tombstones_high_water: 2,
        };
        export_queue_metrics(&m, &qs);
        assert_eq!(m.counter("sim.queue.posted").get(), 10);
        assert_eq!(m.counter("sim.queue.cancelled").get(), 4);
        assert_eq!(m.counter("sim.queue.tombstone_ratio_ppm").get(), 400_000);
    }
}
