//! Tick-grid compatibility shim over the [`dtl_event`] spine.
//!
//! The legacy harnesses advanced their devices with a hand-rolled
//! `while t < t_end { t += step; tick(t) }` poll loop. They now drive the
//! same grid through a [`Simulation`]: every tick is a posted event whose
//! handler re-posts its successor, so the event queue is the single
//! source of simulated time while the tick *instants* — and hence every
//! pinned golden — stay bit-identical to the old loop.
//!
//! A second, optional *side lane* carries exactly-timed events that do
//! not live on the grid: the faulted replays post each scheduled fault at
//! its precise instant instead of quantizing it up to the next 10 s tick.
//!
//! The shim is deprecated in place: it exists so the legacy fixed-grid
//! experiments keep their pinned outputs, not as a pattern for new code.
//! New experiments (see `vm_campaign_run`) skip the grid entirely and
//! post only real deadlines from `next_activity_at`-style queries.

use dtl_dram::Picos;
use dtl_event::{EventHandler, Sched, Simulation};

/// The two event kinds of the compatibility shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GridEv {
    /// A legacy grid tick: run the harness tick body at this instant.
    Tick,
    /// A side-lane release: fire the client's exactly-timed work (fault
    /// injection) scheduled for this instant.
    Side,
}

/// What a harness epoch plugs into the shim.
pub(crate) trait GridDriven {
    type Error;

    /// The legacy per-tick body (device/pool `tick`, flag accumulation).
    fn tick(&mut self, now: Picos) -> Result<(), Self::Error>;

    /// Next side-lane instant, if any (e.g. the fault injector's
    /// `peek_next_at`). Queried after every [`GridDriven::side_fire`] and
    /// once when the epoch is seeded.
    fn side_deadline(&mut self) -> Option<Picos> {
        None
    }

    /// Releases all side-lane work due at `now`.
    fn side_fire(&mut self, now: Picos) -> Result<(), Self::Error> {
        let _ = now;
        Ok(())
    }
}

struct Shim<'x, C> {
    client: &'x mut C,
    step: Picos,
    end: Picos,
}

impl<C: GridDriven> EventHandler<GridEv> for Shim<'_, C> {
    type Error = C::Error;

    fn on_event(
        &mut self,
        now: Picos,
        event: GridEv,
        sched: &mut Sched<'_, GridEv>,
    ) -> Result<(), C::Error> {
        match event {
            GridEv::Tick => {
                self.client.tick(now)?;
                // The legacy loop kept stepping while the *previous*
                // instant was short of the horizon, so the final tick
                // lands exactly on (or, for a non-dividing step, past)
                // `end` — reproduce that cutoff precisely.
                if now < self.end {
                    sched.post(now + self.step, GridEv::Tick);
                }
            }
            GridEv::Side => {
                self.client.side_fire(now)?;
                if let Some(at) = self.client.side_deadline() {
                    if at <= self.end {
                        sched.post(at, GridEv::Side);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Drives one epoch `start..=end` of a legacy harness through the event
/// spine: grid ticks at `start + step, start + 2·step, …` plus the
/// client's exactly-timed side lane. `sim` persists across epochs so the
/// clock stays monotonic; the queue is fully drained on return.
pub(crate) fn drive_epoch<C: GridDriven>(
    sim: &mut Simulation<GridEv>,
    client: &mut C,
    start: Picos,
    end: Picos,
    step: Picos,
) -> Result<(), C::Error> {
    if start >= end {
        return Ok(());
    }
    sim.post(start + step, GridEv::Tick);
    if let Some(at) = client.side_deadline() {
        if at <= end {
            sim.post(at, GridEv::Side);
        }
    }
    let mut shim = Shim { client, step, end };
    sim.step_until_no_events(&mut shim)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        ticks: Vec<Picos>,
        sides: Vec<Picos>,
        pending: Vec<Picos>,
    }

    impl GridDriven for Recorder {
        type Error = std::convert::Infallible;

        fn tick(&mut self, now: Picos) -> Result<(), Self::Error> {
            self.ticks.push(now);
            Ok(())
        }

        fn side_deadline(&mut self) -> Option<Picos> {
            self.pending.first().copied()
        }

        fn side_fire(&mut self, now: Picos) -> Result<(), Self::Error> {
            while self.pending.first().is_some_and(|&p| p <= now) {
                self.pending.remove(0);
            }
            self.sides.push(now);
            Ok(())
        }
    }

    #[test]
    fn grid_matches_legacy_loop() {
        let mut rec = Recorder { ticks: Vec::new(), sides: Vec::new(), pending: Vec::new() };
        let mut sim = Simulation::new(Picos::ZERO);
        let (end, step) = (Picos::from_secs(300), Picos::from_secs(10));
        drive_epoch(&mut sim, &mut rec, Picos::ZERO, end, step).unwrap();
        // The legacy loop for this epoch.
        let mut expect = Vec::new();
        let mut t = Picos::ZERO;
        while t < end {
            t += step;
            expect.push(t);
        }
        assert_eq!(rec.ticks, expect);
        assert!(rec.sides.is_empty());
        assert_eq!(sim.now(), end);
        assert_eq!(sim.pending(), 0, "epoch drains its queue");
    }

    #[test]
    fn side_lane_fires_between_ticks_at_exact_instants() {
        let mut rec = Recorder {
            ticks: Vec::new(),
            sides: Vec::new(),
            pending: vec![Picos::from_secs(13), Picos::from_secs(13), Picos::from_secs(95)],
        };
        let mut sim = Simulation::new(Picos::ZERO);
        drive_epoch(&mut sim, &mut rec, Picos::ZERO, Picos::from_secs(100), Picos::from_secs(10))
            .unwrap();
        // Both 13 s entries release in one firing; 95 s gets its own.
        assert_eq!(rec.sides, vec![Picos::from_secs(13), Picos::from_secs(95)]);
        assert_eq!(rec.ticks.len(), 10);
    }

    #[test]
    fn side_lane_beyond_epoch_waits_for_the_next_seed() {
        let mut rec =
            Recorder { ticks: Vec::new(), sides: Vec::new(), pending: vec![Picos::from_secs(150)] };
        let mut sim = Simulation::new(Picos::ZERO);
        let step = Picos::from_secs(10);
        drive_epoch(&mut sim, &mut rec, Picos::ZERO, Picos::from_secs(100), step).unwrap();
        assert!(rec.sides.is_empty(), "a deadline past the epoch must not fire early");
        drive_epoch(&mut sim, &mut rec, Picos::from_secs(100), Picos::from_secs(200), step)
            .unwrap();
        assert_eq!(rec.sides, vec![Picos::from_secs(150)]);
    }
}
