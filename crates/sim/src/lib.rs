//! # dtl-sim — full-system simulation and the experiment library
//!
//! Glues the substrates together and reproduces every table and figure of
//! the paper's evaluation. Each experiment lives in [`experiments`] as a
//! function returning typed rows; the `dtl-bench` binaries render them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check_run;
mod event_drive;
pub mod exec;
pub mod experiments;
mod fabric_run;
mod fault_run;
mod heartbeat;
mod hotness_run;
mod obs;
mod perf;
mod pool_run;
mod powerdown_run;
pub mod render;
mod report;
mod vm_campaign_run;

pub use check_run::{run_checks, run_checks_jobs, CheckRunConfig, CheckRunResult, SeedResult};
pub use fabric_run::{
    placement_label, run_fabric_cell, run_fabric_cell_observed, FabricCellResult, FabricRunConfig,
};
pub use fault_run::{
    run_faulted, run_faulted_observed, run_faulted_traced, FaultRunConfig, FaultRunResult,
};
pub use heartbeat::Heartbeat;
pub use hotness_run::{
    hotness_savings, run_hotness, run_hotness_traced, run_hotness_with_threshold_factor,
    run_reentry, HotnessRunConfig, HotnessRunResult, ReentryResult,
};
pub use obs::{export_queue_metrics, RunObservations};
pub use perf::PerfModel;
pub use pool_run::{
    run_pool, run_pool_faulted, run_pool_faulted_traced, run_pool_observed, run_pool_traced,
    PoolFaultRunConfig, PoolFaultRunResult, PoolIntervalSample, PoolRunConfig, PoolRunResult,
};
pub use powerdown_run::{
    run_schedule, run_schedule_traced, IntervalSample, PowerDownRunConfig, PowerDownRunResult,
};
pub use report::{f1, f2, f3, metrics_section, pct, to_json, Table};
pub use vm_campaign_run::{
    run_campaign, run_campaign_jobs, run_campaign_observed, CampaignObservations, HostOutcome,
    VmCampaignConfig, VmCampaignResult,
};

/// Debug-build cross-check that the two residency sources agree: the
/// backend's [`PowerReport`](dtl_dram::PowerReport) and the per-rank
/// projection behind [`DeviceSnapshot`](dtl_core::DeviceSnapshot) /
/// telemetry must be the *same* numbers, because both are integrated by
/// the backend's `EnergyAccount`s. Compiled out of release runs.
pub fn assert_residency_consistency<B: dtl_core::MemoryBackend>(
    dev: &dtl_core::DtlDevice<B>,
    report: &dtl_dram::PowerReport,
) {
    if cfg!(debug_assertions) {
        for (c, ch) in report.residency.iter().enumerate() {
            for (r, rank_res) in ch.iter().enumerate() {
                let projected = dev.backend().rank_residency(c as u32, r as u32);
                assert_eq!(
                    *rank_res, projected,
                    "residency mismatch on ch{c}/rk{r}: report vs backend projection"
                );
            }
        }
    }
}
