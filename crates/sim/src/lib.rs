//! # dtl-sim — full-system simulation and the experiment library
//!
//! Glues the substrates together and reproduces every table and figure of
//! the paper's evaluation. Each experiment lives in [`experiments`] as a
//! function returning typed rows; the `dtl-bench` binaries render them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod fault_run;
mod hotness_run;
mod perf;
mod powerdown_run;
mod report;

pub use fault_run::{run_faulted, FaultRunConfig, FaultRunResult};
pub use hotness_run::{
    hotness_savings, run_hotness, run_hotness_with_threshold_factor, run_reentry, HotnessRunConfig,
    HotnessRunResult, ReentryResult,
};
pub use perf::PerfModel;
pub use powerdown_run::{run_schedule, IntervalSample, PowerDownRunConfig, PowerDownRunResult};
pub use report::{f1, f2, f3, pct, to_json, Table};
