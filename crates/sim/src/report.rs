//! Plain-text table rendering and JSON dumping for experiment binaries.

use serde::Serialize;

/// A rendered experiment table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Serializes a result value to pretty JSON (for machine-readable dumps).
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the
/// experiment result types, which contain only plain data).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results serialize cleanly")
}

/// Renders a metrics registry as a titled report section (the plain-text
/// dump the experiment binaries append when `--metrics-out` is given, and
/// what lands at the end of a traced run's console report).
pub fn metrics_section(title: &str, registry: &dtl_telemetry::MetricsRegistry) -> String {
    format!("== {} ==\n{}", title, registry.render_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["a", "1"]);
        t.push(&["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(&["only-one"]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(f3(0.1), "0.100");
        assert_eq!(pct(0.316), "31.6%");
    }

    #[test]
    fn json_dump_works() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        assert!(to_json(&R { x: 3 }).contains("\"x\": 3"));
    }
}
