//! Renderers: experiment result types → aligned text tables.

use crate::experiments::{
    ablate_cke_powerdown as cke, ablate_hotness_params as hotness_params,
    ablate_migration_priority as migration_priority, ablate_page_policy as page_policy,
    ablate_segment_size as segment_size, ablate_smc as smc, cache_pipeline as pipeline, diff_fuzz,
    fabric_load, fault_campaign, fig01, fig02, fig05, fig09, fig10, fig11, fig12, fig14, fig15,
    loaded_latency as loaded, policy_ablation, pool_failover, pool_scale, sec6_1, sec6_6, tab04,
    tab05, tab06, vm_campaign,
};
use crate::{f1, f2, f3, pct, ReentryResult, Table};

/// Figure 1: committed-memory series summary.
pub fn fig01(r: &fig01::Fig01Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 1 - VM memory usage ({} VMs; avg {}, peak {})",
            r.vm_count,
            pct(r.average_fraction),
            pct(r.peak_fraction)
        ),
        &["t_min", "committed_gb", "vcpus", "active_vms"],
    );
    for s in &r.series {
        t.row(&[
            s.at_min.to_string(),
            f1(s.mem_bytes as f64 / (1u64 << 30) as f64),
            s.vcpus.to_string(),
            s.active_vms.to_string(),
        ]);
    }
    t
}

/// Figure 2: rank-count scaling.
pub fn fig02(r: &fig02::Fig02Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 2 - performance vs ranks/channel (mean slowdown at 2 ranks: {})",
            pct(r.mean_slowdown_at_min_ranks - 1.0)
        ),
        &["workload", "ranks", "amat_ns", "slowdown"],
    );
    for row in &r.rows {
        for i in 0..row.ranks.len() {
            t.row(&[
                row.workload.clone(),
                row.ranks[i].to_string(),
                f1(row.amat_ns[i]),
                f3(row.slowdown[i]),
            ]);
        }
    }
    t
}

/// Figure 5: rank-interleaving cost, local vs CXL.
pub fn fig05(r: &fig05::Fig05Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 5 - rank-interleaving cost (local {}, cxl {})",
            pct(r.local_mean() - 1.0),
            pct(r.cxl_mean() - 1.0)
        ),
        &["link", "workload", "interleaved_ns", "dtl_ns", "slowdown"],
    );
    for s in &r.series {
        for row in &s.rows {
            t.row(&[
                s.label.clone(),
                row.workload.clone(),
                f1(row.interleaved_amat_ns),
                f1(row.dtl_amat_ns),
                f3(row.slowdown),
            ]);
        }
    }
    t
}

/// Figure 9: stride distribution.
pub fn fig09(r: &fig09::Fig09Result) -> Table {
    let mut header: Vec<&str> = vec!["trace"];
    for l in &r.bucket_labels {
        header.push(l.as_str());
    }
    let mut t = Table::new("Figure 9 - post-cache stride distribution", &header);
    for row in &r.rows {
        let mut cells = vec![row.label.clone()];
        cells.extend(row.fractions.iter().map(|f| pct(*f)));
        t.row(&cells);
    }
    t
}

/// Figure 10: cold segments vs granularity.
pub fn fig10(r: &fig10::Fig10Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 10 - cold segments vs granularity (threshold {} instr)",
            r.threshold_instructions
        ),
        &["granularity", "touched", "cold_fraction"],
    );
    for row in &r.rows {
        t.row(&[
            format!("{}MB", row.granularity_bytes >> 20),
            row.touched.to_string(),
            pct(row.cold_fraction),
        ]);
    }
    t
}

/// Figure 11: the power model.
pub fn fig11(r: &fig11::Fig11Result) -> (Table, Table) {
    let mut a = Table::new(
        "Figure 11a - background power vs active ranks (of 8)",
        &["active_ranks", "normalized_power"],
    );
    for p in &r.background {
        a.row(&[p.active_ranks.to_string(), f3(p.normalized_power)]);
    }
    let mut b = Table::new(
        "Figure 11b - active power vs bandwidth",
        &["bandwidth_gbps", "active_mw", "mw_per_gbps"],
    );
    for p in &r.active {
        b.row(&[f1(p.bandwidth / 1e9), f1(p.active_mw), f2(p.mw_per_gbps)]);
    }
    (a, b)
}

/// Figures 12 and 13 share one run; this renders the runtime power series.
pub fn fig12(r: &fig12::Fig12Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 12 - rank-level power-down (energy saving {}, exec overhead {})",
            pct(r.energy_saving),
            pct(r.exec_overhead)
        ),
        &["t_min", "base_mw", "dtl_mw", "active_ranks", "migrated_mb"],
    );
    for (b, d) in r.baseline.iter().zip(r.dtl.iter()) {
        t.row(&[
            b.t_min.to_string(),
            f1(b.power_mw),
            f1(d.power_mw),
            d.active_ranks.to_string(),
            if d.migration_bytes > 0 {
                format!("{:.0}", d.migration_bytes as f64 / (1 << 20) as f64)
            } else {
                String::new()
            },
        ]);
    }
    t
}

/// Figure 13: the breakdown table from the same run.
pub fn fig13(r: &fig12::Fig12Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 13 - power breakdown (background saving {}, power saving {})",
            pct(r.background_saving),
            pct(r.power_saving)
        ),
        &["config", "background_mj", "active_mj", "total_mj", "mean_mw"],
    );
    for (label, x) in [("baseline", &r.baseline_totals), ("dtl", &r.dtl_totals)] {
        t.row(&[
            label.to_string(),
            f1(x.background_mj),
            f1(x.active_mj),
            f1(x.total_mj),
            f1(x.mean_power_mw),
        ]);
    }
    t
}

/// Figure 14: hotness-aware self-refresh savings.
pub fn fig14(r: &fig14::Fig14Result) -> Table {
    let mut t = Table::new(
        format!("Figure 14 - hotness-aware self-refresh (scale 1/{})", r.scale),
        &["config", "alloc_frac", "extra_saving", "sr_residency", "warmup_s", "sr_exits"],
    );
    for row in &r.rows {
        t.row(&[
            row.label.clone(),
            pct(row.allocated_fraction),
            pct(row.additional_saving),
            pct(row.sr_residency),
            row.warmup_s.map_or("-".into(), f3),
            row.sr_exits.to_string(),
        ]);
    }
    t
}

/// Figure 15: combined savings.
pub fn fig15(r: &fig15::Fig15Result) -> Table {
    let mut t = Table::new(
        "Figure 15 - total energy savings (both mechanisms)",
        &["config", "powerdown", "hotness_extra", "total"],
    );
    for row in &r.rows {
        t.row(&[
            row.label.clone(),
            pct(row.powerdown_saving),
            pct(row.hotness_additional),
            pct(row.total_saving),
        ]);
    }
    t
}

/// Table 4: MAPKI calibration.
pub fn tab04(r: &tab04::Tab04Result) -> Table {
    let mut t = Table::new(
        format!("Table 4 - MAPKI (max relative error {})", pct(r.max_relative_error)),
        &["workload", "paper", "measured"],
    );
    for row in &r.rows {
        t.row(&[row.workload.clone(), f1(row.paper_mapki), f2(row.measured_mapki)]);
    }
    t
}

/// Table 5: structure sizes.
pub fn tab05(r: &tab05::Tab05Result) -> Table {
    let mut t = Table::new("Table 5 - DTL structure sizes", &["structure", "384GB", "4TB"]);
    let (a, b) = (&r.columns[0].sizes, &r.columns[1].sizes);
    let kb = |v: u64| {
        if v < 4096 {
            format!("{v}B")
        } else if v < 4 << 20 {
            format!("{:.1}KB", v as f64 / 1024.0)
        } else {
            format!("{:.1}MB", v as f64 / (1024.0 * 1024.0))
        }
    };
    let rows: [(&str, u64, u64); 10] = [
        ("L1 segment mapping cache", a.l1_smc_bytes, b.l1_smc_bytes),
        ("L2 segment mapping cache", a.l2_smc_bytes, b.l2_smc_bytes),
        ("Host base addr table", a.host_table_bytes, b.host_table_bytes),
        ("AU base addr table", a.au_table_bytes, b.au_table_bytes),
        ("Hot-cold migration table", a.migration_table_bytes, b.migration_table_bytes),
        ("Segment mapping table", a.segment_mapping_bytes, b.segment_mapping_bytes),
        ("Reverse mapping table", a.reverse_mapping_bytes, b.reverse_mapping_bytes),
        ("Free segment queues", a.free_queue_bytes, b.free_queue_bytes),
        ("Allocated segment queues", a.allocated_queue_bytes, b.allocated_queue_bytes),
        ("Free AU queue", a.free_au_queue_bytes, b.free_au_queue_bytes),
    ];
    for (name, x, y) in rows {
        t.row(&[name.to_string(), kb(x), kb(y)]);
    }
    t.row(&["TOTAL SRAM".into(), kb(a.sram_total()), kb(b.sram_total())]);
    t.row(&["TOTAL DRAM".into(), kb(a.dram_total()), kb(b.dram_total())]);
    t
}

/// Table 6: controller power and area.
pub fn tab06(r: &tab06::Tab06Result) -> Table {
    let mut t = Table::new(
        "Table 6 - controller power and area at 7nm",
        &["component", "384GB_mW", "4TB_mW", "384GB_mm2", "4TB_mm2"],
    );
    let (a, b) = (&r.columns[0].cost, &r.columns[1].cost);
    t.row(&[
        "Segment mapping cache".into(),
        f2(a.smc_mw),
        f2(b.smc_mw),
        f3(a.smc_mm2),
        f3(b.smc_mm2),
    ]);
    t.row(&[
        "SRAM structures".into(),
        f2(a.sram_mw),
        f2(b.sram_mw),
        f3(a.sram_mm2),
        f3(b.sram_mm2),
    ]);
    t.row(&["Microprocessor".into(), f2(a.cpu_mw), f2(b.cpu_mw), f3(a.cpu_mm2), f3(b.cpu_mm2)]);
    t.row(&[
        "Total".into(),
        f2(r.columns[0].total_mw),
        f2(r.columns[1].total_mw),
        f3(r.columns[0].total_mm2),
        f3(r.columns[1].total_mm2),
    ]);
    t
}

/// §6.1: AMAT under DTL translation.
pub fn sec6_1(r: &sec6_1::Sec61Result) -> Table {
    let mut t = Table::new(
        format!("Section 6.1 - AMAT under DTL translation ({} accesses)", r.accesses),
        &["ratios", "l1_miss", "l2_miss", "translation_ns", "amat_ns", "exec_inflation"],
    );
    for e in &r.evals {
        t.row(&[
            e.source.clone(),
            pct(e.l1_miss_ratio),
            pct(e.l2_miss_ratio),
            f1(e.translation_ns),
            f1(e.amat_ns),
            pct(e.exec_inflation),
        ]);
    }
    t
}

/// Fault campaign: what a deterministic fault load costs the pool.
pub fn fault_campaign(r: &fault_campaign::FaultCampaignResult) -> Table {
    let mut t = Table::new(
        format!(
            "Fault campaign - capacity lost {}, energy delta {}, latency penalty {} ns/line",
            pct(r.capacity_lost_fraction),
            pct(r.energy_delta_fraction),
            f3(r.latency_penalty_ns),
        ),
        &[
            "run",
            "energy_mj",
            "faults",
            "correctable",
            "uncorrectable",
            "retired_ranks",
            "capacity_lost_gb",
            "interrupts",
            "rollbacks",
            "crc_errors",
            "link_retries",
        ],
    );
    for (name, s) in [("baseline", &r.baseline), ("faulted", &r.faulted)] {
        t.row(&[
            name.to_string(),
            f1(s.total_energy_mj),
            s.faults_injected.to_string(),
            s.errors.correctable_errors.to_string(),
            s.errors.uncorrectable_errors.to_string(),
            s.ranks_retired.to_string(),
            f2(s.capacity_lost_bytes as f64 / (1u64 << 30) as f64),
            s.migration_interrupts.to_string(),
            s.migration_rollbacks.to_string(),
            s.link.crc_errors.to_string(),
            s.link.retries.to_string(),
        ]);
    }
    t
}

/// Pool scale: one row per (policy, coordinator) variant.
pub fn pool_scale(r: &pool_scale::PoolScaleResult) -> Table {
    let mut t = Table::new(
        format!(
            "Pool scale - pack+coordination saves {} over spread/no-coordination",
            pct(r.savings_fraction)
        ),
        &[
            "policy",
            "coordinator",
            "energy_mj",
            "mean_power_w",
            "mean_active_devices",
            "vms",
            "rejected",
            "drains",
            "parks",
            "evacuations",
            "segments_moved",
        ],
    );
    for v in &r.variants {
        let policy = match v.policy {
            dtl_pool::PlacementPolicy::PackForPower => "pack",
            dtl_pool::PlacementPolicy::SpreadForBandwidth => "spread",
        };
        t.row(&[
            policy.to_string(),
            if v.coordinator { "on" } else { "off" }.to_string(),
            f1(v.result.total_energy_mj),
            f2(v.result.mean_power_mw() / 1000.0),
            f2(v.result.mean_active_devices()),
            v.result.vms_allocated.to_string(),
            v.result.vms_rejected.to_string(),
            v.result.stats.drains_started.to_string(),
            v.result.stats.devices_parked.to_string(),
            v.result.stats.evacuations_completed.to_string(),
            v.result.stats.segments_evacuated.to_string(),
        ]);
    }
    t
}

/// Fabric load: one row per (placement, burst) cell of the sweep, access
/// tail latency beside the switch-port and DRAM energy headlines.
pub fn fabric_load(r: &fabric_load::FabricLoadResult) -> Table {
    let mut t = Table::new(
        "Fabric load - access tail latency and port energy vs offered load",
        &[
            "placement",
            "burst",
            "accesses",
            "p50_ns",
            "p99_ns",
            "p99.9_ns",
            "queue_mean_ns",
            "max_util",
            "ports",
            "port_mj",
            "dram_mj",
            "share_min",
            "share_max",
        ],
    );
    for c in &r.cells {
        t.row(&[
            c.placement_label().to_string(),
            c.burst.to_string(),
            c.accesses.to_string(),
            f1(c.access_p50_ps as f64 / 1000.0),
            f1(c.access_p99_ps as f64 / 1000.0),
            f1(c.access_p999_ps as f64 / 1000.0),
            f1(c.queue_mean_ps / 1000.0),
            f3(c.max_port_utilization),
            c.ports_used.to_string(),
            f3(c.switch_port_energy_mj),
            f1(c.dram_energy_mj),
            f3(c.host_share_min),
            f3(c.host_share_max),
        ]);
    }
    t
}

/// Policy ablation: one row per (policy, mix, coordinator) cell, with
/// energy savings and access-p99 delta against the fixed-threshold cell
/// of the same (mix, coordinator) pair.
pub fn policy_ablation(r: &policy_ablation::PolicyAblationResult) -> Table {
    let title = match r.headline() {
        Some(w) => format!(
            "Policy ablation - {} saves {} over FixedThreshold on {} (coordinator {}) at \
             equal-or-better p99",
            w.policy.name(),
            pct(w.savings_fraction),
            w.mix,
            if w.coordinator { "on" } else { "off" },
        ),
        None => "Policy ablation - no ladder policy beat FixedThreshold".to_string(),
    };
    let mut t = Table::new(
        title,
        &[
            "policy",
            "mix",
            "burst",
            "coordinator",
            "energy_mj",
            "savings_vs_fixed",
            "mean_power_w",
            "access_p99_ns",
            "p99_delta_ns",
            "vms",
            "parks",
        ],
    );
    for c in &r.cells {
        let (savings, delta) = match r.baseline(&c.mix, c.coordinator) {
            Some(base) if base.result.total_energy_mj > 0.0 => (
                pct(1.0 - c.result.total_energy_mj / base.result.total_energy_mj),
                f1((c.access_p99_ps as i64 - base.access_p99_ps as i64) as f64 / 1000.0),
            ),
            _ => ("-".to_string(), "-".to_string()),
        };
        t.row(&[
            c.policy.name().to_string(),
            c.mix.clone(),
            c.trickle_burst.to_string(),
            if c.coordinator { "on" } else { "off" }.to_string(),
            f1(c.result.total_energy_mj),
            savings,
            f2(c.result.mean_power_mw() / 1000.0),
            f1(c.access_p99_ps as f64 / 1000.0),
            delta,
            c.result.vms_allocated.to_string(),
            c.result.stats.devices_parked.to_string(),
        ]);
    }
    t
}

/// Pool failover: one row per retirement campaign plus the batch verdict.
pub fn pool_failover(r: &pool_failover::PoolFailoverResult) -> Table {
    let mut t = Table::new(
        format!(
            "Pool failover - {} campaigns, {} devices retired, {} AUs lost ({})",
            r.campaigns.len(),
            r.total_devices_retired,
            r.total_lost_aus,
            if r.total_lost_aus == 0 { "lossless" } else { "LOSS" },
        ),
        &[
            "seed",
            "retirements",
            "failovers",
            "faults",
            "evacuations",
            "segments_moved",
            "lost_aus",
            "vms",
            "energy_mj",
        ],
    );
    for c in &r.campaigns {
        t.row(&[
            c.seed.to_string(),
            c.retirements.to_string(),
            c.result.failovers.to_string(),
            c.result.faults_injected.to_string(),
            c.result.evacuations_completed.to_string(),
            c.result.segments_evacuated.to_string(),
            c.result.lost_aus.to_string(),
            c.result.vms_allocated.to_string(),
            f1(c.result.total_energy_mj),
        ]);
    }
    t
}

/// VM campaign: fleet aggregates plus the first sampled hosts.
pub fn vm_campaign(r: &vm_campaign::VmCampaignResult) -> Table {
    let mut t = Table::new(
        format!(
            "VM campaign - {} hosts x {} min, {} VMs, {} events, saves {} vs always-standby",
            r.hosts,
            r.duration_min,
            r.vms_placed,
            r.events_processed,
            pct(r.savings_fraction)
        ),
        &[
            "host_seed",
            "vms",
            "rejected",
            "groups_down",
            "groups_woken",
            "drains",
            "events",
            "energy_j",
            "background_j",
        ],
    );
    for h in &r.sample {
        t.row(&[
            h.seed.to_string(),
            h.vms_placed.to_string(),
            h.vms_rejected.to_string(),
            h.groups_powered_down.to_string(),
            h.groups_woken.to_string(),
            h.segments_drained.to_string(),
            h.events_processed.to_string(),
            f1(h.energy_mj / 1000.0),
            f1(h.background_mj / 1000.0),
        ]);
    }
    t
}

/// Differential fuzz: one row per seed, verdicts from the lockstep
/// cross-check.
pub fn diff_fuzz(r: &diff_fuzz::DiffFuzzResult) -> Table {
    let mut t = Table::new(
        format!(
            "Differential fuzz - {} seeds ({} faulted), {} lockstep ops, {} checks, {} violations",
            r.seeds, r.faulted_seeds, r.total_ops, r.total_checks, r.violations
        ),
        &["seed", "faulted", "ops", "accesses", "commands", "checks", "deep", "verdict"],
    );
    for s in &r.batch.seeds {
        let verdict = match &s.counterexample {
            None => "clean".to_string(),
            Some(ce) => format!("VIOLATION ({} ops shrunk)", ce.ops.len()),
        };
        t.row(&[
            s.seed.to_string(),
            s.faulted.to_string(),
            s.executed.to_string(),
            s.accesses.to_string(),
            s.commands.to_string(),
            s.full_checks.to_string(),
            s.deep_checks.to_string(),
            verdict,
        ]);
    }
    t
}

/// §6.6: device scaling and the mapping cost.
pub fn sec6_6(r: &sec6_6::Sec66Result) -> Table {
    let mut t = Table::new(
        "Section 6.6 - device scaling and the cost of the DTL mapping",
        &["device", "channels", "ranks/ch", "mean_slowdown"],
    );
    for row in &r.rows {
        t.row(&[
            row.label.clone(),
            row.channels.to_string(),
            row.ranks_per_channel.to_string(),
            pct(row.mean_slowdown - 1.0),
        ]);
    }
    t
}

/// §3.4: self-refresh exit and re-entry.
pub fn sec3_4_reentry(r: &ReentryResult) -> Table {
    let mut t = Table::new("Section 3.4 - self-refresh exit and re-entry", &["metric", "value"]);
    t.row(&["migrations before first SR entries".into(), r.initial_migrations.to_string()]);
    t.row(&["probes until a victim woke".into(), r.probes_to_wake.to_string()]);
    t.row(&["migrations to re-enter".into(), r.reentry_migrations.to_string()]);
    t.row(&["time to re-enter".into(), r.reentry_time.to_string()]);
    t.row(&["total SR entries".into(), r.sr_entries.to_string()]);
    t
}

/// Cache pipeline (§5.2 methodology validation).
pub fn cache_pipeline(r: &pipeline::CachePipelineResult) -> Table {
    let mut t = Table::new(
        "Cache pipeline (Section 5.2 methodology)",
        &[
            "workload",
            "raw_apki",
            "post_mapki",
            "l1_miss",
            "l2_miss",
            "llc_miss",
            "pre_4m",
            "post_4m",
        ],
    );
    for row in &r.rows {
        let (l1, l2, llc) = row.miss_ratios;
        t.row(&[
            row.workload.clone(),
            f1(row.raw_apki),
            f1(row.post_mapki),
            pct(l1),
            pct(l2),
            pct(llc),
            pct(row.pre_at_least_4m),
            pct(row.post_at_least_4m),
        ]);
    }
    t
}

/// Loaded latency: cycle simulator vs the M/D/1 model.
pub fn loaded_latency(r: &loaded::LoadedLatencyResult) -> Table {
    let mut t = Table::new(
        "Loaded latency - cycle simulator vs M/D/1 model (one channel)",
        &["offered_gbps", "measured_ns", "model_ns"],
    );
    for p in &r.points {
        t.row(&[f1(p.offered / 1e9), f1(p.measured_ns), p.predicted_ns.map_or("-".into(), f1)]);
    }
    t
}

/// Ablation: CKE idle power-down vs DTL consolidation.
pub fn ablate_cke_powerdown(r: &cke::CkeResult) -> Table {
    let mut t = Table::new(
        "Ablation: CKE idle power-down vs DTL consolidation",
        &["traffic", "timeout", "pd_residency", "cke_bg_saving", "dtl_bg_saving"],
    );
    for row in &r.rows {
        t.row(&[
            row.utilization_label.clone(),
            format!("{}ns", row.timeout_ns),
            pct(row.pd_residency),
            pct(row.cke_background_saving),
            pct(row.dtl_background_saving),
        ]);
    }
    t
}

/// Ablation: profiling-threshold sensitivity.
pub fn ablate_hotness_params(r: &hotness_params::ThresholdResult) -> Table {
    let mut t = Table::new(
        "Ablation: profiling threshold (paper default 50 ms)",
        &["threshold", "sr_entries", "sr_exits", "residency", "swaps", "stable_mw"],
    );
    for row in &r.rows {
        t.row(&[
            format!("{:.1}ms", row.threshold_ms_unscaled),
            row.sr_entries.to_string(),
            row.sr_exits.to_string(),
            pct(row.sr_residency),
            row.swaps.to_string(),
            format!("{:.0}", row.stable_power_mw),
        ]);
    }
    t
}

/// Ablation: migration priority.
pub fn ablate_migration_priority(r: &migration_priority::PriorityResult) -> Table {
    let mut t = Table::new(
        "Ablation: migration priority during a 256 KiB segment migration",
        &["policy", "fg_mean_ns", "fg_max_ns"],
    );
    for row in &r.rows {
        t.row(&[row.policy.clone(), f1(row.fg_mean_ns), f1(row.fg_max_ns)]);
    }
    t
}

/// Ablation: page policy under the DTL mapping.
pub fn ablate_page_policy(r: &page_policy::PagePolicyResult) -> Table {
    let mut t = Table::new(
        "Ablation: page policy under the DTL mapping",
        &["workload", "policy", "amat_ns", "row_hits"],
    );
    for row in &r.rows {
        t.row(&[
            row.workload.clone(),
            row.policy.clone(),
            f1(row.amat_ns),
            pct(row.row_hit_fraction),
        ]);
    }
    t
}

/// Ablation: translation segment size.
pub fn ablate_segment_size(r: &segment_size::SegmentSizeResult) -> Table {
    let mut t = Table::new(
        "Ablation: segment size (paper picks 2 MiB, Section 4.1)",
        &["segment", "cold_fraction", "sram_kb", "dram_kb", "migrate_ms/seg"],
    );
    for row in &r.rows {
        t.row(&[
            format!("{}MB", row.segment_bytes >> 20),
            pct(row.cold_fraction),
            f1(row.sram_kb),
            f1(row.dram_kb),
            format!("{:.2}", row.migration_ms_per_segment),
        ]);
    }
    t
}

/// Ablation: segment mapping cache sizing.
pub fn ablate_smc(r: &smc::SmcResult) -> Table {
    let mut t = Table::new(
        "Ablation: SMC sizing (paper: 64-entry L1, 1024-entry 4-way L2)",
        &["l1", "l2", "l1_miss", "l2_miss", "translation_ns"],
    );
    for row in &r.rows {
        t.row(&[
            row.l1_entries.to_string(),
            row.l2_entries.to_string(),
            pct(row.l1_miss),
            pct(row.l2_miss),
            f1(row.translation_ns),
        ]);
    }
    t
}

/// SLO report rendered beside an experiment's energy headline: latency
/// percentile rows (access including the CXL retry penalty, VM admission,
/// and fabric port queueing where a switched interconnect is modeled)
/// plus an evacuation-backlog summary line. Absent sections render as `-`
/// cells so the table shape is stable across campaigns.
pub fn slo(r: &dtl_telemetry::SloReport) -> String {
    let ns = |ps: u64| f1(ps as f64 / 1000.0);
    let mut t = Table::new(
        "SLO report",
        &["metric", "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "p99.9_ns"],
    );
    for (name, summary) in [
        ("access+retry", &r.access),
        ("admission", &r.admission),
        ("fabric_queue", &r.fabric_queue),
    ] {
        match summary {
            Some(l) => t.row(&[
                name.to_string(),
                l.count.to_string(),
                f1(l.mean_ps / 1000.0),
                ns(l.p50_ps),
                ns(l.p95_ps),
                ns(l.p99_ps),
                ns(l.p999_ps),
            ]),
            None => t.row(&[
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        };
    }
    let backlog = match &r.evac_backlog {
        Some(b) => format!(
            "evacuation backlog: {} drains, peak depth {}, max age {}us, mean age {}us",
            b.completed,
            b.peak_depth,
            f1(b.max_age_ps as f64 / 1e6),
            f1(b.mean_age_ps / 1e6),
        ),
        None => "evacuation backlog: -".to_string(),
    };
    format!("{}{}\n", t.render(), backlog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_renders() {
        let r = fig01::run(1);
        let t = fig01(&r);
        assert!(t.render().contains("Figure 1"));
        assert_eq!(t.len(), r.series.len());
    }

    #[test]
    fn fig11_renders_both_panels() {
        let r = fig11::run();
        let (a, b) = fig11(&r);
        assert!(a.render().contains("11a"));
        assert!(b.render().contains("11b"));
    }

    #[test]
    fn tab05_and_tab06_render() {
        let t5 = tab05(&tab05::run());
        assert!(t5.render().contains("Segment mapping table"));
        assert_eq!(t5.len(), 12);
        let t6 = tab06(&tab06::run());
        assert!(t6.render().contains("Microprocessor"));
    }

    #[test]
    fn slo_renders_present_and_absent_sections() {
        let empty = dtl_telemetry::SloReport::default();
        let s = slo(&empty);
        assert!(s.contains("== SLO report =="));
        assert!(s.contains("access+retry"));
        assert!(s.contains("admission"));
        assert!(s.contains("fabric_queue"));
        assert!(s.contains("evacuation backlog: -"));
        let h = dtl_telemetry::Histogram::default();
        h.observe(1_000);
        h.observe(2_000);
        let full = dtl_telemetry::SloReport {
            access: dtl_telemetry::LatencySummary::from_histogram(&h),
            admission: None,
            evac_backlog: dtl_telemetry::BacklogSummary::from_parts(&h, 3),
            fabric_queue: None,
        };
        let s = slo(&full);
        assert!(s.contains("peak depth 3"));
        assert!(!s.contains("evacuation backlog: -"));
    }

    #[test]
    fn tab04_renders() {
        let t = tab04(&tab04::run(1, 20_000));
        assert_eq!(t.len(), 10);
        assert!(t.render().contains("graph-analytics"));
    }
}

#[cfg(test)]
mod more_render_tests {
    use super::*;
    use crate::experiments::{fig02 as f02, fig09 as f09, fig10 as f10, sec6_1 as s61};
    use crate::{HotnessRunConfig, PowerDownRunConfig};
    use dtl_trace::WorkloadKind;

    #[test]
    fn fig09_and_fig10_render() {
        let r = f09::run(1, 5_000, 64);
        let t = fig09(&r);
        assert_eq!(t.len(), 10);
        assert!(t.render().contains("mix-8"));
        let r = f10::run(1, 20_000, 64);
        let t = fig10(&r);
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("2MB"));
    }

    #[test]
    fn fig02_renders_three_rank_points_per_workload() {
        let r = f02::run(2_000, &[WorkloadKind::WebSearch]);
        let t = fig02(&r);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig12_and_fig13_render_from_one_run() {
        let r = crate::experiments::fig12::run(&PowerDownRunConfig::tiny(3, true), (0.014, 0.0018))
            .unwrap();
        let t12 = fig12(&r);
        assert_eq!(t12.len(), r.baseline.len());
        let t13 = fig13(&r);
        assert_eq!(t13.len(), 2);
        assert!(t13.render().contains("baseline"));
    }

    #[test]
    fn fig14_fig15_and_sec61_render() {
        let base = HotnessRunConfig {
            accesses: 400_000,
            n_apps: 2,
            channels: 2,
            ..HotnessRunConfig::tiny(5, true)
        };
        let r14 = crate::experiments::fig14::run(&base, &[("x", 4, 0.6)]).unwrap();
        assert_eq!(fig14(&r14).len(), 1);
        let r15 = crate::experiments::fig15::run(&base, 8, &[("x", 4, 0.6)]).unwrap();
        assert_eq!(fig15(&r15).len(), 1);
        let r61 = s61::run(1, 30_000, 64).unwrap();
        let t = sec6_1(&r61);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("paper"));
    }
}
