//! The hotness-aware self-refresh experiment harness (paper §5.2, Figure
//! 14): replay mixed post-cache traces against a DTL device whose
//! rank-level power-down already reduced it to N active ranks, and measure
//! the *additional* energy the self-refresh mechanism saves.
//!
//! Space and time are scaled together by `scale` (a laptop cannot replay
//! 20-billion-instruction traces against 384 GB): a 1/256-scale device
//! sweeps its working set 256× faster, so the profiling thresholds shrink
//! by the same factor and every dimensionless quantity — accesses per
//! segment per threshold window, migration time over threshold — is
//! preserved.

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, DtlError, HostId, SegmentGeometry};
use dtl_dram::{AccessKind, Picos, PowerParams};
use dtl_telemetry::Telemetry;
use dtl_trace::{Mixer, WorkloadKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::assert_residency_consistency;

/// Configuration of one hotness replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotnessRunConfig {
    /// Trace seed.
    pub seed: u64,
    /// Space/time scale versus the paper's 384 GB node (must divide the
    /// 1024-segment AU by more than the channel count: ≤ 256).
    pub scale: u64,
    /// DRAM channels (paper: 4).
    pub channels: u32,
    /// Active ranks per channel after power-down (paper: 6 or 8).
    pub active_ranks: u32,
    /// Fraction of device capacity allocated to VMs (paper Figure 14:
    /// 208/224/240 GB of 288 GB, or 304 GB of 384 GB).
    pub allocated_fraction: f64,
    /// Applications in the mix.
    pub n_apps: usize,
    /// Replay bandwidth in bytes/s (paper: > 30 GB/s).
    pub target_bw: f64,
    /// Post-cache accesses to replay.
    pub accesses: u64,
    /// Whether the hotness mechanism runs (off = baseline).
    pub hotness: bool,
}

impl HotnessRunConfig {
    /// A Figure 14-style configuration at 1/128 scale.
    pub fn paper_scaled(seed: u64, active_ranks: u32, allocated_fraction: f64) -> Self {
        HotnessRunConfig {
            seed,
            scale: 128,
            channels: 4,
            active_ranks,
            allocated_fraction,
            n_apps: 6,
            target_bw: 30.0e9,
            accesses: 6_000_000,
            hotness: true,
        }
    }

    /// A fast test configuration.
    pub fn tiny(seed: u64, hotness: bool) -> Self {
        HotnessRunConfig {
            seed,
            scale: 256,
            channels: 2,
            active_ranks: 4,
            allocated_fraction: 0.6,
            n_apps: 3,
            target_bw: 30.0e9,
            accesses: 1_200_000,
            hotness,
        }
    }

    fn segs_per_rank(&self) -> u64 {
        // Paper rank: 12 GiB (384 GB / 32 ranks) of 2 MiB segments.
        6144 / self.scale
    }

    fn capacity_bytes(&self, segment_bytes: u64) -> u64 {
        u64::from(self.channels)
            * u64::from(self.active_ranks)
            * self.segs_per_rank()
            * segment_bytes
    }
}

/// Result of one hotness replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotnessRunResult {
    /// Total DRAM energy over the replay, millijoules.
    pub total_energy_mj: f64,
    /// Background share.
    pub background_mj: f64,
    /// Mean DRAM power over the stable phase (final 40 % of the replay,
    /// after warmup consolidation), milliwatts.
    pub stable_power_mw: f64,
    /// Fraction of rank-time spent in self-refresh.
    pub sr_residency: f64,
    /// Time of the first self-refresh entry (warmup), if any.
    pub first_sr_entry: Option<Picos>,
    /// Self-refresh entries.
    pub sr_entries: u64,
    /// Self-refresh exits (ping-pong indicator).
    pub sr_exits: u64,
    /// Segment swaps executed.
    pub swaps_executed: u64,
    /// Replay length in simulated time.
    pub duration: Picos,
    /// Accesses replayed.
    pub accesses: u64,
}

/// Replays a mixed trace against a DTL device with only the hotness
/// mechanism active.
///
/// # Errors
///
/// Propagates device errors (which indicate harness or device bugs).
pub fn run_hotness(cfg: &HotnessRunConfig) -> Result<HotnessRunResult, DtlError> {
    run_hotness_instrumented(cfg, 1.0, &Telemetry::disabled())
}

/// Like [`run_hotness`], but with a live telemetry handle: the replay
/// streams `SegmentMigrated` / `TspAdvance` / `SelfRefreshSwap` /
/// `RankPowerTransition` events into its sink and, if a metrics registry is
/// attached, exports every engine's statistics there at the end.
///
/// # Errors
///
/// Propagates device errors (which indicate harness or device bugs).
pub fn run_hotness_traced(
    cfg: &HotnessRunConfig,
    telemetry: &Telemetry,
) -> Result<HotnessRunResult, DtlError> {
    run_hotness_instrumented(cfg, 1.0, telemetry)
}

/// Like [`run_hotness`], but scales the profiling idle threshold by
/// `factor` relative to the paper's 50 ms default (for the threshold
/// ablation study).
///
/// # Errors
///
/// Propagates device errors (which indicate harness or device bugs).
pub fn run_hotness_with_threshold_factor(
    cfg: &HotnessRunConfig,
    factor: f64,
) -> Result<HotnessRunResult, DtlError> {
    run_hotness_instrumented(cfg, factor, &Telemetry::disabled())
}

fn run_hotness_instrumented(
    cfg: &HotnessRunConfig,
    factor: f64,
    telemetry: &Telemetry,
) -> Result<HotnessRunResult, DtlError> {
    let mut dtl_cfg = DtlConfig::paper();
    dtl_cfg.au_bytes = (2 << 30) / cfg.scale;
    dtl_cfg.profile_window = Picos::from_ps(Picos::from_us(500).as_ps() / cfg.scale);
    dtl_cfg.profile_threshold =
        Picos::from_ps(((Picos::from_ms(50).as_ps() / cfg.scale) as f64 * factor) as u64);
    let geo = SegmentGeometry {
        channels: cfg.channels,
        ranks_per_channel: cfg.active_ranks,
        segs_per_rank: cfg.segs_per_rank(),
    };
    let mut backend =
        AnalyticBackend::new(geo, dtl_cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
    // Migration must keep its real-time ratio to the (scaled) thresholds.
    backend.migration_bw_bytes_per_sec *= cfg.scale as f64;
    let mut dev = DtlDevice::new(dtl_cfg, backend);
    dev.set_telemetry(telemetry.clone());
    dev.set_powerdown_enabled(false);
    dev.set_hotness_enabled(cfg.hotness);
    dev.register_host(HostId(0))?;

    // Build the application mix: equal working sets adding up to the
    // allocated fraction, AU-aligned so app-local offsets map through
    // per-AU base addresses.
    let capacity = cfg.capacity_bytes(dtl_cfg.segment_bytes);
    let allocated = (capacity as f64 * cfg.allocated_fraction) as u64;
    let per_app = (allocated / cfg.n_apps as u64 / dtl_cfg.au_bytes).max(1) * dtl_cfg.au_bytes;
    let specs: Vec<WorkloadSpec> = WorkloadKind::TRACED
        .iter()
        .cycle()
        .take(cfg.n_apps)
        .map(|k| {
            let mut s = k.spec();
            s.working_set_bytes = per_app;
            s
        })
        .collect();
    let mut mix = Mixer::new(&specs, cfg.seed);
    // Allocate one AU at a time, round-robin over the applications and
    // interleaved with filler AUs that are freed afterwards: live and
    // unallocated capacity end up *fragmented across all ranks*, exactly
    // the state a real pool reaches after allocation churn. (A freshly
    // packed device would leave whole ranks empty and make the hotness
    // mechanism's job trivial.)
    let per_app_aus = per_app / dtl_cfg.au_bytes;
    let total_aus = capacity / dtl_cfg.au_bytes;
    let filler_aus = total_aus - per_app_aus * cfg.n_apps as u64;
    let mut app_au_bases: Vec<Vec<dtl_core::HostPhysAddr>> = vec![Vec::new(); cfg.n_apps];
    let mut fillers = Vec::new();
    let mut filler_credit = 0.0f64;
    let filler_per_slot = filler_aus as f64 / (per_app_aus * cfg.n_apps as u64).max(1) as f64;
    for round in 0..per_app_aus {
        let _ = round;
        for bases in app_au_bases.iter_mut() {
            let vm = dev.alloc_vm(HostId(0), dtl_cfg.au_bytes, Picos::ZERO)?;
            bases.push(vm.hpa_base(0, dtl_cfg.au_bytes));
            filler_credit += filler_per_slot;
            while filler_credit >= 1.0 {
                filler_credit -= 1.0;
                let f = dev.alloc_vm(HostId(0), dtl_cfg.au_bytes, Picos::ZERO)?;
                fillers.push(f.handle);
            }
        }
    }
    for f in fillers {
        dev.dealloc_vm(f, Picos::ZERO)?;
    }

    let dt = Picos::from_ps((64.0 / cfg.target_bw * 1e12) as u64);
    let tick_every = 256u64;
    let mut now = Picos::from_ns(1);
    let mut first_sr_entry = None;
    let stable_from = cfg.accesses * 6 / 10;
    let mut stable_start: Option<(Picos, f64)> = None;
    for i in 0..cfg.accesses {
        let r = mix.next_record();
        let local = r.addr - mix.base_of(r.instance);
        let au_idx = (local / dtl_cfg.au_bytes) as usize;
        let hpa = app_au_bases[r.instance as usize][au_idx].offset_by(local % dtl_cfg.au_bytes);
        let kind = if r.is_write { AccessKind::Write } else { AccessKind::Read };
        dev.access(HostId(0), hpa, kind, now)?;
        now += dt;
        if i % tick_every == 0 {
            dev.tick(now)?;
            if first_sr_entry.is_none() && dev.hotness_stats().sr_entries > 0 {
                first_sr_entry = Some(now);
            }
        }
        if i == stable_from {
            let rep = dev.power_report(now);
            stable_start = Some((now, rep.total.total_mj()));
        }
    }
    dev.tick(now)?;
    dev.check_invariants()?;
    let report = dev.power_report(now);
    assert_residency_consistency(&dev, &report);
    if let Some(m) = telemetry.metrics() {
        dev.export_metrics(m);
    }
    // Self-refresh residency over all ranks.
    let mut sr_ps: u128 = 0;
    for ch in &report.residency {
        for rank_res in ch {
            sr_ps += u128::from(rank_res[3].as_ps()); // PowerState::ALL[3] = SelfRefresh
        }
    }
    let total_ps = u128::from(now.as_ps()) * u128::from(geo.channels * geo.ranks_per_channel);
    let hs = dev.hotness_stats();
    let (t0, e0) = stable_start.expect("stable point sampled");
    let stable_power_mw = (report.total.total_mj() - e0) / (now - t0).as_secs_f64();
    Ok(HotnessRunResult {
        total_energy_mj: report.total.total_mj(),
        background_mj: report.total.background_mj,
        stable_power_mw,
        sr_residency: sr_ps as f64 / total_ps as f64,
        first_sr_entry,
        sr_entries: hs.sr_entries,
        sr_exits: hs.sr_exits,
        swaps_executed: dev.migration_stats().completed,
        duration: now,
        accesses: cfg.accesses,
    })
}

/// Runs baseline (hotness off) and treatment (hotness on) with identical
/// traffic; returns `(baseline, treatment, stable_saving_fraction)`.
///
/// The saving compares **stable-phase power** — the paper's Figure 14
/// likewise reports stable-phase savings; warmup consolidation energy
/// amortizes over the minutes-to-hours that datacenter access patterns
/// stay stable (§6.3).
///
/// # Errors
///
/// Propagates device errors from either replay.
pub fn hotness_savings(
    cfg: &HotnessRunConfig,
) -> Result<(HotnessRunResult, HotnessRunResult, f64), DtlError> {
    let off = run_hotness(&HotnessRunConfig { hotness: false, ..*cfg })?;
    let on = run_hotness(&HotnessRunConfig { hotness: true, ..*cfg })?;
    let saving = 1.0 - on.stable_power_mw / off.stable_power_mw;
    Ok((off, on, saving))
}

/// Result of the self-refresh re-entry study (paper §3.4: "a reactivated
/// rank requires only a small amount of data migration to re-enter the
/// self-refresh mode", because most victim segments stay cold).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReentryResult {
    /// Segment migrations executed before the first self-refresh entries.
    pub initial_migrations: u64,
    /// Probes issued until one landed on a self-refreshing rank.
    pub probes_to_wake: u64,
    /// Migrations executed between the forced wake and re-entry.
    pub reentry_migrations: u64,
    /// Time from the wake to re-entry.
    pub reentry_time: Picos,
    /// Self-refresh entries observed in total.
    pub sr_entries: u64,
}

/// Runs the re-entry study: replay until the victim ranks sit in
/// self-refresh, wake one by touching its (live) contents, keep replaying,
/// and measure how much migration the re-entry needs.
///
/// # Errors
///
/// Propagates device errors; fails with [`DtlError::Internal`] if the
/// replay never reaches self-refresh or never re-enters (use a config that
/// is known to, e.g. [`HotnessRunConfig::tiny`] with a denser allocation).
pub fn run_reentry(cfg: &HotnessRunConfig) -> Result<ReentryResult, DtlError> {
    let mut dtl_cfg = DtlConfig::paper();
    dtl_cfg.au_bytes = (2 << 30) / cfg.scale;
    dtl_cfg.profile_window = Picos::from_ps(Picos::from_us(500).as_ps() / cfg.scale);
    dtl_cfg.profile_threshold = Picos::from_ps(Picos::from_ms(50).as_ps() / cfg.scale);
    let geo = SegmentGeometry {
        channels: cfg.channels,
        ranks_per_channel: cfg.active_ranks,
        segs_per_rank: cfg.segs_per_rank(),
    };
    let mut backend =
        AnalyticBackend::new(geo, dtl_cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
    backend.migration_bw_bytes_per_sec *= cfg.scale as f64;
    let mut dev = DtlDevice::new(dtl_cfg, backend);
    dev.set_powerdown_enabled(false);
    dev.set_hotness_enabled(true);
    dev.register_host(HostId(0))?;
    let capacity = cfg.capacity_bytes(dtl_cfg.segment_bytes);
    let allocated = (capacity as f64 * cfg.allocated_fraction) as u64;
    let per_app = (allocated / cfg.n_apps as u64 / dtl_cfg.au_bytes).max(1) * dtl_cfg.au_bytes;
    let specs: Vec<WorkloadSpec> = WorkloadKind::TRACED
        .iter()
        .cycle()
        .take(cfg.n_apps)
        .map(|k| {
            let mut s = k.spec();
            s.working_set_bytes = per_app;
            s
        })
        .collect();
    let mut mix = Mixer::new(&specs, cfg.seed);
    let per_app_aus = per_app / dtl_cfg.au_bytes;
    let total_aus = capacity / dtl_cfg.au_bytes;
    let filler_aus = total_aus - per_app_aus * cfg.n_apps as u64;
    let mut app_au_bases: Vec<Vec<dtl_core::HostPhysAddr>> = vec![Vec::new(); cfg.n_apps];
    let mut fillers = Vec::new();
    let mut credit = 0.0f64;
    let per_slot = filler_aus as f64 / (per_app_aus * cfg.n_apps as u64).max(1) as f64;
    for _ in 0..per_app_aus {
        for bases in app_au_bases.iter_mut() {
            let vm = dev.alloc_vm(HostId(0), dtl_cfg.au_bytes, Picos::ZERO)?;
            bases.push(vm.hpa_base(0, dtl_cfg.au_bytes));
            credit += per_slot;
            while credit >= 1.0 {
                credit -= 1.0;
                fillers.push(dev.alloc_vm(HostId(0), dtl_cfg.au_bytes, Picos::ZERO)?.handle);
            }
        }
    }
    for f in fillers {
        dev.dealloc_vm(f, Picos::ZERO)?;
    }

    let dt = Picos::from_ps((64.0 / cfg.target_bw * 1e12) as u64);
    let mut now = Picos::from_ns(1);
    let replay = |dev: &mut DtlDevice<AnalyticBackend>,
                  mix: &mut Mixer,
                  now: &mut Picos,
                  steps: u64|
     -> Result<(), DtlError> {
        for i in 0..steps {
            let r = mix.next_record();
            let local = r.addr - mix.base_of(r.instance);
            let au_idx = (local / dtl_cfg.au_bytes) as usize;
            let hpa = app_au_bases[r.instance as usize][au_idx].offset_by(local % dtl_cfg.au_bytes);
            let kind = if r.is_write { AccessKind::Write } else { AccessKind::Read };
            dev.access(HostId(0), hpa, kind, *now)?;
            *now += dt;
            if i % 256 == 0 {
                dev.tick(*now)?;
            }
        }
        Ok(())
    };

    // Phase 1: reach stable self-refresh on every channel.
    let mut budget = cfg.accesses;
    while dev.hotness_stats().sr_entries < u64::from(cfg.channels) && budget > 0 {
        replay(&mut dev, &mut mix, &mut now, 100_000.min(budget))?;
        budget = budget.saturating_sub(100_000);
    }
    if dev.hotness_stats().sr_entries < u64::from(cfg.channels) {
        return Err(DtlError::Internal {
            reason: "replay never reached stable self-refresh".into(),
        });
    }
    let initial_migrations = dev.migration_stats().completed;
    let entries_before = dev.hotness_stats().sr_entries;
    let exits_before = dev.hotness_stats().sr_exits;

    // Phase 2: probe until an access lands on a self-refreshing rank (the
    // probe itself is the wake). Walk every segment of every app.
    let mut probes = 0u64;
    'probe: for (app, bases) in app_au_bases.iter().enumerate() {
        let _ = app;
        for (ai, base) in bases.iter().enumerate() {
            let _ = ai;
            for seg in 0..dtl_cfg.segments_per_au() {
                dev.access(
                    HostId(0),
                    base.offset_by(seg * dtl_cfg.segment_bytes),
                    AccessKind::Read,
                    now,
                )?;
                now += dt;
                probes += 1;
                dev.tick(now)?;
                if dev.hotness_stats().sr_exits > exits_before {
                    break 'probe;
                }
            }
        }
    }
    if dev.hotness_stats().sr_exits == exits_before {
        return Err(DtlError::Internal {
            reason: "no probe reached a self-refreshing rank (victims hold no live data)".into(),
        });
    }
    let wake_time = now;
    let migrations_at_wake = dev.migration_stats().completed;

    // Phase 3: keep replaying until the woken rank re-enters.
    let mut budget = cfg.accesses;
    while dev.hotness_stats().sr_entries == entries_before && budget > 0 {
        replay(&mut dev, &mut mix, &mut now, 50_000.min(budget))?;
        budget = budget.saturating_sub(50_000);
    }
    if dev.hotness_stats().sr_entries == entries_before {
        return Err(DtlError::Internal { reason: "woken rank never re-entered".into() });
    }
    dev.check_invariants()?;
    Ok(ReentryResult {
        initial_migrations,
        probes_to_wake: probes,
        reentry_migrations: dev.migration_stats().completed - migrations_at_wake,
        reentry_time: now - wake_time,
        sr_entries: dev.hotness_stats().sr_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotness_enters_self_refresh_and_saves_energy() {
        let (off, on, saving) = hotness_savings(&HotnessRunConfig::tiny(5, true)).unwrap();
        assert_eq!(off.sr_entries, 0, "baseline never self-refreshes");
        assert!(on.sr_entries > 0, "treatment must reach self-refresh: {on:?}");
        assert!(on.sr_residency > 0.02, "SR residency {}", on.sr_residency);
        assert!(saving > 0.0, "saving {saving}");
        assert!(on.first_sr_entry.is_some());
    }

    #[test]
    fn nearly_full_device_struggles_to_self_refresh() {
        let loose = HotnessRunConfig::tiny(5, true);
        let tight = HotnessRunConfig { allocated_fraction: 0.95, ..loose };
        let l = run_hotness(&loose).unwrap();
        let t = run_hotness(&tight).unwrap();
        // The paper's Figure 14 contrast: scarce unallocated capacity makes
        // cold collection harder. Our workload model includes dormant
        // (allocated-but-cold) regions, which soften the paper's cliff —
        // the tight configuration may still reach self-refresh — but it
        // must never do *better* than the loose one beyond noise.
        assert!(
            t.sr_residency <= l.sr_residency + 0.02,
            "tight {} vs loose {}",
            t.sr_residency,
            l.sr_residency
        );
        assert!(l.sr_entries > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_hotness(&HotnessRunConfig::tiny(9, true)).unwrap();
        let b = run_hotness(&HotnessRunConfig::tiny(9, true)).unwrap();
        assert_eq!(a.total_energy_mj, b.total_energy_mj);
        assert_eq!(a.sr_entries, b.sr_entries);
    }

    #[test]
    fn reentry_needs_little_migration() {
        // The §3.4 claim: after a wake, most victim segments are still
        // cold, so re-entering self-refresh is cheap.
        let cfg = HotnessRunConfig {
            allocated_fraction: 0.8,
            accesses: 2_000_000,
            ..HotnessRunConfig::tiny(5, true)
        };
        let r = run_reentry(&cfg).unwrap();
        assert!(r.sr_entries > cfg.channels as u64, "{r:?}");
        assert!(
            r.reentry_migrations <= r.initial_migrations.max(4),
            "re-entry should be no more expensive than warmup: {r:?}"
        );
        assert!(r.reentry_time > Picos::ZERO);
    }
}

#[cfg(test)]
mod drift_tests {
    use super::*;
    use dtl_core::DtlDevice;
    use dtl_trace::TraceGen;

    /// When the access pattern shifts (hot set drifts), the hotness engine
    /// adapts: the parked victim gets touched, wakes, and a new
    /// consolidation round re-establishes self-refresh.
    #[test]
    fn engine_adapts_to_pattern_drift() {
        let scale = 256u64;
        let mut dtl_cfg = DtlConfig::paper();
        dtl_cfg.au_bytes = (2u64 << 30) / scale;
        dtl_cfg.profile_window = Picos::from_ps(Picos::from_us(500).as_ps() / scale);
        dtl_cfg.profile_threshold = Picos::from_ps(Picos::from_ms(50).as_ps() / scale);
        let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 24 };
        let mut backend =
            AnalyticBackend::new(geo, dtl_cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
        backend.migration_bw_bytes_per_sec *= scale as f64;
        let mut dev = DtlDevice::new(dtl_cfg, backend);
        dev.set_powerdown_enabled(false);
        dev.register_host(dtl_core::HostId(0)).unwrap();
        // One app covering ~85% of capacity so victims hold live data.
        let capacity = geo.total_segments() * dtl_cfg.segment_bytes;
        let ws = (capacity * 85 / 100 / dtl_cfg.au_bytes) * dtl_cfg.au_bytes;
        let mut spec = dtl_trace::WorkloadKind::DataServing.spec();
        spec.working_set_bytes = ws;
        let mut gen = TraceGen::new(spec, 2);
        let vm = dev.alloc_vm(dtl_core::HostId(0), ws, Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, dtl_cfg.au_bytes);
        let dt = Picos::from_ps((64.0 / 30.0e9 * 1e12) as u64);
        let mut now = Picos::from_ns(1);
        let replay =
            |dev: &mut DtlDevice<AnalyticBackend>, gen: &mut TraceGen, now: &mut Picos, n: u64| {
                for i in 0..n {
                    let r = gen.next_record();
                    dev.access(dtl_core::HostId(0), base.offset_by(r.addr), AccessKind::Read, *now)
                        .unwrap();
                    *now += dt;
                    if i % 256 == 0 {
                        dev.tick(*now).unwrap();
                    }
                }
            };
        // Phase 1: reach self-refresh.
        let mut budget = 3_000_000u64;
        while dev.hotness_stats().sr_entries < 2 && budget > 0 {
            replay(&mut dev, &mut gen, &mut now, 100_000);
            budget -= 100_000;
        }
        assert!(dev.hotness_stats().sr_entries >= 2, "{:?}", dev.hotness_stats());
        let entries_before = dev.hotness_stats().sr_entries;
        // Phase 2: the pattern shifts hard.
        gen.drift_hot_set(0.7);
        let mut budget = 3_000_000u64;
        while dev.hotness_stats().sr_entries <= entries_before && budget > 0 {
            replay(&mut dev, &mut gen, &mut now, 100_000);
            budget -= 100_000;
        }
        let hs = dev.hotness_stats();
        assert!(
            hs.sr_entries > entries_before,
            "the engine must re-establish self-refresh after drift: {hs:?}"
        );
        dev.check_invariants().unwrap();
    }
}
