//! Opt-in wall-clock progress heartbeat for long campaigns.
//!
//! A [`Heartbeat`] prints rate-limited progress lines to **stderr** so a
//! paper-scale campaign (minutes of wall clock) is visibly alive without
//! touching a single simulated observable. Non-perturbation is by
//! construction, not by discipline:
//!
//! * the struct holds no simulation state and its methods return nothing a
//!   harness could branch on;
//! * rate limiting uses [`std::time::Instant`] — wall clock only, never the
//!   simulated clock;
//! * output goes to stderr, so piped stdout (tables, JSON) is unchanged.
//!
//! `tests/parallel_determinism.rs` additionally pins that a campaign run
//! with the heartbeat enabled is bit-identical to one without.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Rate-limited stderr progress reporter. Disabled is the default and
/// costs one branch per tick; enabled prints at most once per interval.
#[derive(Debug)]
pub struct Heartbeat {
    enabled: bool,
    label: &'static str,
    interval: Duration,
    done: AtomicU64,
    last: Mutex<Option<Instant>>,
}

impl Heartbeat {
    /// Default interval between printed lines.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(2);

    /// A heartbeat labelled `label`, printing only when `enabled`.
    pub fn new(enabled: bool, label: &'static str) -> Self {
        Heartbeat {
            enabled,
            label,
            interval: Self::DEFAULT_INTERVAL,
            done: AtomicU64::new(0),
            last: Mutex::new(None),
        }
    }

    /// A silent heartbeat (what library callers and tests pass).
    pub fn disabled() -> Self {
        Self::new(false, "")
    }

    /// Whether ticks print anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one completed work unit of `total` and prints a progress
    /// line when the rate limiter allows. Callable from worker threads.
    pub fn tick(&self, total: u64) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let mut last = self.last.lock().unwrap();
        let now = Instant::now();
        let due = match *last {
            None => true,
            Some(prev) => now.duration_since(prev) >= self.interval,
        };
        // The final unit always prints, so every enabled run ends with a
        // complete line even when it finishes inside one interval.
        if due || done == total {
            *last = Some(now);
            eprintln!("[heartbeat] {}: {done}/{total} units", self.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_heartbeat_counts_nothing_and_prints_nothing() {
        let hb = Heartbeat::disabled();
        assert!(!hb.enabled());
        hb.tick(10);
        assert_eq!(hb.done.load(Ordering::Relaxed), 0, "disabled tick is a pure no-op");
    }

    #[test]
    fn enabled_heartbeat_counts_units() {
        let hb = Heartbeat::new(true, "test");
        for _ in 0..5 {
            hb.tick(5);
        }
        assert_eq!(hb.done.load(Ordering::Relaxed), 5);
    }
}
