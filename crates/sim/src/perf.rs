//! Execution-time modeling shared by the latency experiments (Figures 2
//! and 5, §6.1).
//!
//! CloudSuite-class workloads are latency-sensitive but not memory-bound:
//! execution time is modeled as compute time plus exposed memory stall
//! time,
//!
//! ```text
//! T ∝ CPI_core / f_core + (MAPKI / 1000) × AMAT × exposed_fraction
//! ```
//!
//! where `exposed_fraction` captures memory-level parallelism hiding part
//! of each miss (out-of-order cores overlap misses; the paper's measured
//! sensitivities — 0.7 % for 8→2 ranks, 1.7 %/1.4 % for rank-interleaving
//! — imply most of the AMAT delta is hidden).

use dtl_dram::Picos;
use serde::{Deserialize, Serialize};

/// Core-side parameters of the execution-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Core cycles per instruction excluding post-LLC memory stalls.
    pub base_cpi: f64,
    /// Core frequency in GHz (the paper's Xeon runs at 2.7 GHz).
    pub core_ghz: f64,
    /// Fraction of each memory access latency exposed as stall (the rest
    /// is hidden by memory-level parallelism).
    pub exposed_fraction: f64,
}

impl PerfModel {
    /// Calibration for the paper's server and CloudSuite workloads. The
    /// exposed fraction is fitted to the paper's measured sensitivities
    /// (−0.7 % for 8→2 ranks, −1.7 % for no rank interleaving, +0.18 % for
    /// the 4.2 ns translation adder): wide out-of-order cores hide most of
    /// each additional nanosecond.
    pub fn cloudsuite() -> Self {
        PerfModel { base_cpi: 1.0, core_ghz: 2.7, exposed_fraction: 0.08 }
    }

    /// Nanoseconds per instruction spent computing.
    pub fn compute_ns_per_instr(&self) -> f64 {
        self.base_cpi / self.core_ghz
    }

    /// Modeled time per instruction given a workload's memory intensity
    /// and the average memory access time.
    pub fn ns_per_instr(&self, mapki: f64, amat: Picos) -> f64 {
        self.compute_ns_per_instr() + mapki / 1000.0 * amat.as_ns_f64() * self.exposed_fraction
    }

    /// Relative slowdown of `amat` versus `amat_base` (1.0 = no change).
    pub fn slowdown(&self, mapki: f64, amat: Picos, amat_base: Picos) -> f64 {
        self.ns_per_instr(mapki, amat) / self.ns_per_instr(mapki, amat_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_one_for_equal_amat() {
        let m = PerfModel::cloudsuite();
        let a = Picos::from_ns(121);
        assert!((m.slowdown(2.0, a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_amat_slows_down_proportionally_to_mapki() {
        let m = PerfModel::cloudsuite();
        let base = Picos::from_ns(121);
        let worse = Picos::from_ns(140);
        let light = m.slowdown(0.7, worse, base);
        let heavy = m.slowdown(6.5, worse, base);
        assert!(light > 1.0 && heavy > light, "light {light}, heavy {heavy}");
        // CloudSuite-scale deltas stay in low single digits.
        assert!(heavy < 1.15, "heavy {heavy}");
    }

    #[test]
    fn small_latency_deltas_give_sub_percent_slowdowns() {
        // A few ns of extra AMAT — the paper's DTL translation adder —
        // must cost well under 1%.
        let m = PerfModel::cloudsuite();
        let s = m.slowdown(2.0, Picos::from_ns(214), Picos::from_ns(210));
        assert!(s > 1.0 && s < 1.01, "slowdown {s}");
    }
}
