//! The fault-campaign harness: replay the Figure 12 VM schedule against a
//! DTL device while a deterministic [`FaultPlan`](dtl_fault::FaultPlan)
//! fires ECC errors, link CRC corruption, and migration interruptions into
//! the run.
//!
//! The harness maps each [`FaultKind`] onto the corresponding injection
//! hook — device ECC reports drive the per-rank health tracker (and, past
//! the retirement threshold, automatic rank retirement), link CRC bursts go
//! through a [`RetryEngine`] charging replay latency and energy to
//! foreground traffic, and migration interruptions exercise the
//! crash-consistent replay/rollback paths. After **every** injected fault
//! the device's `check_invariants` is asserted, so any fault that could
//! leave the mapping tables, allocator, or SMC inconsistent fails the run
//! immediately.

use dtl_core::{
    AnalyticBackend, DtlConfig, DtlDevice, DtlError, HealthStats, HostId, MemoryBackend,
    SegmentGeometry, VmHandle,
};
use dtl_cxl::{LinkRetryStats, RetryEngine, RetryPolicy};
use dtl_dram::{Picos, PowerParams};
use dtl_event::Simulation;
use dtl_fault::{FaultInjector, FaultKind, FaultPlanConfig, StormConfig};
use dtl_telemetry::{BacklogSummary, LatencySummary, SloReport, Telemetry};
use dtl_trace::{VmEventKind, VmId, VmSchedule};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::event_drive::{self, GridDriven};
use crate::{assert_residency_consistency, PowerDownRunConfig, RunObservations};

/// Configuration of one faulted schedule replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRunConfig {
    /// The underlying schedule replay (duration, device shape, hosts).
    pub run: PowerDownRunConfig,
    /// The fault schedule. Its `duration`, `channels` and
    /// `ranks_per_channel` must match `run`.
    pub faults: FaultPlanConfig,
}

impl FaultRunConfig {
    /// A fault-free replay (quiet plan) — the baseline to compare against.
    pub fn fault_free(seed: u64, run: PowerDownRunConfig) -> Self {
        let duration = Picos::from_secs(u64::from(run.duration_min) * 60);
        FaultRunConfig {
            run,
            faults: FaultPlanConfig::quiet(seed, duration, run.channels, run.ranks_per_channel),
        }
    }

    /// The tiny campaign used by tests: background correctable noise, link
    /// CRC corruption, periodic migration interruptions, and an error storm
    /// on rank (0, 1) starting 10 minutes in.
    pub fn tiny_storm(seed: u64) -> Self {
        let run = PowerDownRunConfig::tiny(seed, true);
        let mut cfg = FaultRunConfig::fault_free(seed, run);
        cfg.faults.correctable_per_rank_per_sec = 0.002;
        cfg.faults.link_crc_per_sec = 0.05;
        cfg.faults.link_crc_max_burst = 6;
        cfg.faults.migration_interrupts = 12;
        cfg.faults.storm = Some(StormConfig {
            channel: 0,
            rank: 1,
            start: Picos::from_secs(600),
            events: 30,
            spacing: Picos::from_ms(250),
            correctable_ratio: 0.8,
        });
        cfg
    }
}

/// Result of one faulted replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRunResult {
    /// Total DRAM energy, millijoules.
    pub total_energy_mj: f64,
    /// Background share of the total.
    pub background_mj: f64,
    /// Mean DRAM power, milliwatts.
    pub mean_power_mw: f64,
    /// VMs placed.
    pub vms_allocated: u64,
    /// Faults injected over the run.
    pub faults_injected: u64,
    /// Device-wide error counters.
    pub errors: HealthStats,
    /// Mapped segments that were at risk when uncorrectable errors struck
    /// (summed over events; the host-visible blast radius).
    pub segments_at_risk: u64,
    /// Ranks the health tracker retired automatically.
    pub auto_retirements: u64,
    /// Ranks retired by the end of the run.
    pub ranks_retired: u64,
    /// Capacity permanently lost to retirement, bytes.
    pub capacity_lost_bytes: u64,
    /// Migration interruptions that hit an in-flight job.
    pub migration_interrupts: u64,
    /// Interrupted migrations that exhausted their retries and rolled back.
    pub migration_rollbacks: u64,
    /// Link retry activity (CRC errors, replays, give-ups, time, energy).
    pub link: LinkRetryStats,
    /// Foreground cache lines transferred over the run.
    pub foreground_lines: u64,
    /// Mean link-retry latency added per foreground line, nanoseconds —
    /// the foreground latency penalty of CRC faults.
    pub latency_penalty_ns: f64,
}

/// Replays a VM schedule with faults injected along the way.
///
/// # Errors
///
/// Propagates device errors; an invariant violation after an injected
/// fault surfaces here as [`DtlError::Internal`].
pub fn run_faulted(cfg: &FaultRunConfig) -> Result<FaultRunResult, DtlError> {
    run_faulted_traced(cfg, &Telemetry::disabled())
}

/// Like [`run_faulted`], but with a live telemetry handle: fault strikes,
/// health transitions, CXL retries, and power transitions stream into its
/// sink; an attached metrics registry additionally receives the
/// `fault.released.*` counters and every engine's statistics.
///
/// # Errors
///
/// Propagates device errors; an invariant violation after an injected
/// fault surfaces here as [`DtlError::Internal`].
pub fn run_faulted_traced(
    cfg: &FaultRunConfig,
    telemetry: &Telemetry,
) -> Result<FaultRunResult, DtlError> {
    run_faulted_observed(cfg, telemetry).map(|(result, _)| result)
}

/// Like [`run_faulted_traced`], additionally returning the out-of-band
/// [`RunObservations`]: link-transaction latency (base round trip plus any
/// CRC retry penalty), VM admission latency, the migration-drain backlog,
/// and the event spine's queue counters. The serialized [`FaultRunResult`]
/// is unchanged, so goldens stay byte-stable.
///
/// # Errors
///
/// Propagates device errors; an invariant violation after an injected
/// fault surfaces here as [`DtlError::Internal`].
pub fn run_faulted_observed(
    cfg: &FaultRunConfig,
    telemetry: &Telemetry,
) -> Result<(FaultRunResult, RunObservations), DtlError> {
    let rcfg = &cfg.run;
    let dtl_cfg = DtlConfig::paper();
    let geo = SegmentGeometry {
        channels: rcfg.channels,
        ranks_per_channel: rcfg.ranks_per_channel,
        segs_per_rank: rcfg.segs_per_rank(dtl_cfg.segment_bytes),
    };
    let backend = AnalyticBackend::new(geo, dtl_cfg.segment_bytes, PowerParams::ddr4_128gb_dimm());
    let mut dev = DtlDevice::new(dtl_cfg, backend);
    dev.set_telemetry(telemetry.clone());
    dev.set_hotness_enabled(false);
    dev.set_powerdown_enabled(rcfg.powerdown);
    for h in 0..rcfg.hosts.max(1) {
        dev.register_host(HostId(h))?;
    }

    let mut injector = cfg.faults.generate().injector();
    if let Some(m) = telemetry.metrics() {
        injector.set_metrics(m);
    }
    let mut link = RetryEngine::new(RetryPolicy::default());
    // Latency observations start from the CXL round trip (Table 1: 89 ns
    // added by the link); retry backoff stacks on top. Base latency feeds
    // only the SLO histogram — the energy/retry accounting in
    // [`LinkRetryStats`] is untouched.
    link.set_base_latency(dtl_cxl::LinkModel::cxl().round_trip());
    link.set_telemetry(telemetry.clone());
    let mut faults_injected = 0u64;
    let mut segments_at_risk = 0u64;
    let mut foreground_lines = 0u64;

    let schedule = VmSchedule::synthesize(rcfg.seed, rcfg.node, rcfg.duration_min);
    let mut handles: HashMap<VmId, (VmHandle, u32, u64)> = HashMap::new();
    let mut vcpus_active: u32 = 0;
    let mut events = schedule.events().iter().peekable();
    let epoch = Picos::from_secs(300);
    let tick_step = Picos::from_secs(10);
    // One event-spine clock for the whole replay. Grid ticks ride the
    // compatibility shim; faults fire on its side lane at their exact
    // scheduled instants instead of being quantized up to the next tick.
    let mut sim = Simulation::new(Picos::ZERO);

    let mut t_min = 0u32;
    while t_min < rcfg.duration_min {
        let t_start = Picos::from_secs(u64::from(t_min) * 60);
        while let Some(ev) = events.peek() {
            if ev.at_min > t_min {
                break;
            }
            let ev = events.next().expect("peeked");
            match ev.kind {
                VmEventKind::Alloc(vm) => {
                    let host = HostId((vm.id.0 % u32::from(rcfg.hosts.max(1))) as u16);
                    match dev.alloc_vm(host, vm.mem_bytes, t_start) {
                        Ok(alloc) => {
                            vcpus_active += vm.vcpus;
                            handles.insert(vm.id, (alloc.handle, vm.vcpus, vm.mem_bytes));
                        }
                        // AU rounding and fault-driven capacity loss can
                        // both push a near-full schedule over the edge;
                        // such VMs go elsewhere in the cluster.
                        Err(DtlError::OutOfCapacity { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                VmEventKind::Dealloc(id) => {
                    if let Some((h, vcpus, _)) = handles.remove(&id) {
                        dev.dealloc_vm(h, t_start)?;
                        vcpus_active -= vcpus;
                    }
                }
            }
        }
        foreground_lines += record_epoch_traffic(&mut dev, rcfg, vcpus_active, epoch);
        let t_end = t_start + epoch;
        let mut client = FaultedEpoch {
            dev: &mut dev,
            link: &mut link,
            injector: &mut injector,
            segments_at_risk: &mut segments_at_risk,
            faults_injected: &mut faults_injected,
        };
        event_drive::drive_epoch(&mut sim, &mut client, t_start, t_end, tick_step)?;
        t_min += 5;
    }
    let final_t = Picos::from_secs(u64::from(rcfg.duration_min) * 60);
    let report = dev.power_report(final_t);
    dev.check_invariants()?;
    assert_residency_consistency(&dev, &report);
    let obs = RunObservations {
        slo: SloReport {
            access: LatencySummary::from_histogram(link.latency_histogram()),
            admission: LatencySummary::from_histogram(dev.admission_histogram()),
            evac_backlog: BacklogSummary::from_parts(
                dev.drain_age_histogram(),
                dev.migration_backlog_high_water(),
            ),
            fabric_queue: None,
        },
        queue: sim.queue_stats(),
    };
    if let Some(m) = telemetry.metrics() {
        dev.export_metrics(m);
        crate::export_queue_metrics(m, &obs.queue);
    }

    let ranks_retired = dev.powerdown_stats().ranks_retired;
    let rank_bytes = geo.segs_per_rank * dtl_cfg.segment_bytes;
    let link_stats = link.stats();
    let latency_penalty_ns = if foreground_lines == 0 {
        0.0
    } else {
        link_stats.retry_time.as_ns_f64() / foreground_lines as f64
    };
    let duration_s = final_t.as_secs_f64();
    let result = FaultRunResult {
        total_energy_mj: report.total.total_mj(),
        background_mj: report.total.background_mj,
        mean_power_mw: report.total.total_mj() / duration_s,
        vms_allocated: dev.stats().vms_allocated,
        faults_injected,
        errors: dev.health_stats(),
        segments_at_risk,
        auto_retirements: dev.stats().auto_retirements,
        ranks_retired,
        capacity_lost_bytes: ranks_retired * rank_bytes,
        migration_interrupts: dev.stats().migration_interrupts,
        migration_rollbacks: dev.migration_stats().rollbacks,
        link: link_stats,
        foreground_lines,
        latency_penalty_ns,
    };
    Ok((result, obs))
}

/// One epoch of the faulted replay as the event spine's grid client:
/// grid ticks advance the device, the side lane releases faults at their
/// exact scheduled instants.
struct FaultedEpoch<'x> {
    dev: &'x mut DtlDevice<AnalyticBackend>,
    link: &'x mut RetryEngine,
    injector: &'x mut FaultInjector,
    segments_at_risk: &'x mut u64,
    faults_injected: &'x mut u64,
}

impl GridDriven for FaultedEpoch<'_> {
    type Error = DtlError;

    fn tick(&mut self, now: Picos) -> Result<(), DtlError> {
        self.dev.tick(now)
    }

    fn side_deadline(&mut self) -> Option<Picos> {
        self.injector.peek_next_at()
    }

    fn side_fire(&mut self, now: Picos) -> Result<(), DtlError> {
        for fault in self.injector.pop_due(now) {
            apply_fault(self.dev, self.link, fault.kind, now, self.segments_at_risk)?;
            *self.faults_injected += 1;
            self.dev.check_invariants()?;
        }
        Ok(())
    }
}

fn apply_fault(
    dev: &mut DtlDevice<AnalyticBackend>,
    link: &mut RetryEngine,
    kind: FaultKind,
    now: Picos,
    segments_at_risk: &mut u64,
) -> Result<(), DtlError> {
    match kind {
        FaultKind::CorrectableEcc { channel, rank } => {
            dev.inject_correctable_error(channel, rank, now)?;
        }
        FaultKind::UncorrectableEcc { channel, rank } => {
            let report = dev.inject_uncorrectable_error(channel, rank, now)?;
            *segments_at_risk += report.segments_at_risk;
        }
        FaultKind::LinkCrc { burst } => {
            // The corruption rides the link's own timer queue: scheduled
            // at its exact fault instant and released immediately (the
            // bulk-traffic model has no per-request stream to lag it
            // behind), so the replay cost lands in the link's retry
            // accounting. A finer traffic model can defer `release_due`
            // to the next in-flight request without touching this path.
            link.schedule_crc_burst(now, burst);
            link.release_due(now);
            link.on_submit_at(now);
        }
        FaultKind::MigrationInterrupt { channel } => {
            dev.inject_migration_interrupt(channel, now)?;
        }
    }
    Ok(())
}

fn record_epoch_traffic(
    dev: &mut DtlDevice<AnalyticBackend>,
    cfg: &PowerDownRunConfig,
    vcpus: u32,
    epoch: Picos,
) -> u64 {
    let bytes = f64::from(vcpus) * cfg.per_vcpu_bw * epoch.as_secs_f64();
    let lines = (bytes / 64.0) as u64;
    let reads = (lines as f64 * cfg.read_fraction) as u64;
    let writes = lines - reads;
    let mut active: Vec<(u32, u32)> = Vec::new();
    for c in 0..cfg.channels {
        for r in 0..cfg.ranks_per_channel {
            if dev.backend().rank_state(c, r) == dtl_dram::PowerState::Standby {
                active.push((c, r));
            }
        }
    }
    if active.is_empty() {
        return 0;
    }
    let per = active.len() as u64;
    for (c, r) in active {
        dev.backend_mut().record_foreground_bulk(c, r, reads / per, writes / per);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_matches_quiet_plan() {
        let cfg = FaultRunConfig::fault_free(7, PowerDownRunConfig::tiny(7, true));
        let r = run_faulted(&cfg).unwrap();
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.errors, HealthStats::default());
        assert_eq!(r.ranks_retired, 0);
        assert_eq!(r.capacity_lost_bytes, 0);
        assert_eq!(r.link, LinkRetryStats::default());
        assert!(r.total_energy_mj > 0.0);
        assert!(r.foreground_lines > 0);
    }

    #[test]
    fn storm_campaign_retires_the_victim() {
        let r = run_faulted(&FaultRunConfig::tiny_storm(7)).unwrap();
        assert!(r.faults_injected > 0);
        assert!(r.errors.retire_trips >= 1, "the storm trips retirement");
        assert_eq!(r.auto_retirements, 1, "one victim rank auto-retired");
        assert_eq!(r.ranks_retired, 1);
        assert!(r.capacity_lost_bytes > 0);
        assert!(r.link.crc_errors > 0, "CRC faults reach the link");
        assert!(r.latency_penalty_ns >= 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_faulted(&FaultRunConfig::tiny_storm(11)).unwrap();
        let b = run_faulted(&FaultRunConfig::tiny_storm(11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn observed_run_reports_slo_and_queue_counters() {
        let cfg = FaultRunConfig::tiny_storm(7);
        let (r, obs) = run_faulted_observed(&cfg, &Telemetry::disabled()).unwrap();
        assert_eq!(r, run_faulted(&cfg).unwrap(), "observability must not change the result");
        let base = dtl_cxl::LinkModel::cxl().round_trip().as_ps();
        let access = obs.slo.access.expect("CRC bursts drive link transactions");
        assert!(access.count >= 1);
        assert!(access.p50_ps >= base, "latency includes the base round trip");
        let admission = obs.slo.admission.expect("the schedule admits VMs");
        assert_eq!(admission.count, r.vms_allocated);
        let backlog = obs.slo.evac_backlog.expect("deallocations queue drain migrations");
        assert!(backlog.completed > 0 || backlog.peak_depth > 0);
        assert!(obs.queue.posted > 0, "epoch grid rides the event spine");
    }
}
