//! The fabric-load harness: drive synchronized access bursts from several
//! hosts through a switched CXL fabric into a [`MemoryPool`] and measure
//! what port contention does to tail latency — and what topology-aware
//! placement does to switch-port energy.
//!
//! One *cell* fixes a placement policy (pack-under-one-switch vs
//! spread-across-switches) and an offered load (accesses per VM per
//! window). Every window, each VM fires its burst at the window-start
//! instant; the fabric's FIFO ports serialize the pile-up analytically, so
//! queue wait — and hence the access p99 — grows with the burst while the
//! windows between bursts let idle ports sleep. The pool is driven on the
//! `dtl-event` spine, one tick per window.

use dtl_core::{DtlError, HostId};
use dtl_dram::{AccessKind, Picos};
use dtl_event::Simulation;
use dtl_fabric::{CxlFabric, TopologyConfig};
use dtl_pool::{AnalyticMemoryPool, DeviceId, MemoryPool, PlacementPolicy, PoolConfig};
use dtl_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

use crate::event_drive::{self, GridDriven, GridEv};
use crate::RunObservations;

/// Configuration of one fabric-load cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricRunConfig {
    /// Offset seed rotating each VM's touched cache lines across windows.
    pub seed: u64,
    /// Placement policy — the topology-aware placement axis: pack puts
    /// every VM under one switch, spread fans them across both.
    pub placement: PlacementPolicy,
    /// Accesses each VM fires at every window start (the offered load).
    pub burst: u64,
    /// Number of burst windows.
    pub windows: u32,
    /// Window length, microseconds.
    pub window_us: u64,
    /// Hosts driving traffic (each gets its own fabric up ports).
    pub hosts: u16,
    /// Pooled devices behind the fabric.
    pub devices: u16,
    /// VMs admitted per host.
    pub vms_per_host: u16,
    /// Use paper-scale device geometry instead of the tiny one.
    pub paper_scale: bool,
}

impl FabricRunConfig {
    /// The tiny cell: 2 hosts × 4 devices on a dual-switch fabric, 30
    /// one-second windows.
    pub fn tiny(seed: u64) -> Self {
        FabricRunConfig {
            seed,
            placement: PlacementPolicy::PackForPower,
            burst: 32,
            windows: 30,
            window_us: 1_000_000,
            hosts: 2,
            devices: 4,
            vms_per_host: 2,
            paper_scale: false,
        }
    }

    /// The paper-scale cell: 4 hosts × 8 devices, 60 windows.
    pub fn paper(seed: u64) -> Self {
        FabricRunConfig {
            seed,
            placement: PlacementPolicy::PackForPower,
            burst: 64,
            windows: 60,
            window_us: 1_000_000,
            hosts: 4,
            devices: 8,
            vms_per_host: 2,
            paper_scale: true,
        }
    }

    /// The derived pool configuration: fabric cells disable the power
    /// coordinator so the placement axis stays a pure topology choice
    /// (the coordinator would drain spread placements back into packs).
    pub fn pool_config(&self) -> PoolConfig {
        let mut cfg = if self.paper_scale {
            PoolConfig::paper(self.devices)
        } else {
            PoolConfig::tiny(self.devices)
        };
        cfg.policy = self.placement;
        cfg.coordinator.enabled = false;
        cfg
    }

    /// The dual-switch topology the cell runs over.
    pub fn topology(&self) -> TopologyConfig {
        TopologyConfig::dual_switch(self.hosts, self.devices)
    }

    /// The cell's horizon.
    pub fn horizon(&self) -> Picos {
        Picos::from_us(self.window_us) * u64::from(self.windows)
    }
}

/// Result of one fabric-load cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricCellResult {
    /// Placement policy of the cell.
    pub placement: PlacementPolicy,
    /// Accesses per VM per window.
    pub burst: u64,
    /// Total accesses charged through the fabric.
    pub accesses: u64,
    /// Mean end-to-end access latency, picoseconds.
    pub access_mean_ps: f64,
    /// Median access latency, picoseconds.
    pub access_p50_ps: u64,
    /// 99th-percentile access latency, picoseconds.
    pub access_p99_ps: u64,
    /// 99.9th-percentile access latency, picoseconds.
    pub access_p999_ps: u64,
    /// Mean port queue wait, picoseconds.
    pub queue_mean_ps: f64,
    /// 99th-percentile port queue wait, picoseconds.
    pub queue_p99_ps: u64,
    /// Highest per-port wire utilization, 0..=1.
    pub max_port_utilization: f64,
    /// Fabric ports that carried at least one transfer.
    pub ports_used: u64,
    /// Energy of every switch port over the horizon, millijoules.
    pub switch_port_energy_mj: f64,
    /// Pool DRAM energy over the horizon, millijoules.
    pub dram_energy_mj: f64,
    /// Smallest per-host share of fabric bytes, 0..=1.
    pub host_share_min: f64,
    /// Largest per-host share of fabric bytes, 0..=1.
    pub host_share_max: f64,
}

impl FabricCellResult {
    /// Stable placement label used in tables and CI drift gates.
    pub fn placement_label(&self) -> &'static str {
        placement_label(self.placement)
    }
}

/// Stable label of a placement variant.
pub fn placement_label(placement: PlacementPolicy) -> &'static str {
    match placement {
        PlacementPolicy::PackForPower => "pack_one_switch",
        PlacementPolicy::SpreadForBandwidth => "spread_switches",
    }
}

/// A fabric window as the event spine's grid client: one pool tick at the
/// window boundary.
struct FabricEpoch<'x> {
    pool: &'x mut AnalyticMemoryPool,
}

impl GridDriven for FabricEpoch<'_> {
    type Error = DtlError;

    fn tick(&mut self, now: Picos) -> Result<(), DtlError> {
        self.pool.tick(now).map_err(DtlError::from)
    }
}

/// Runs one fabric-load cell.
///
/// # Errors
///
/// Propagates pool/device errors (the harness never over-commits the
/// pool or routes to unreachable devices).
pub fn run_fabric_cell(cfg: &FabricRunConfig) -> Result<FabricCellResult, DtlError> {
    run_fabric_cell_observed(cfg, &Telemetry::disabled()).map(|(r, _)| r)
}

/// Like [`run_fabric_cell`], with a telemetry handle (fabric port events
/// stream into it) and the out-of-band [`RunObservations`] (SLO report
/// including the fabric-queue population, plus event-spine counters).
///
/// # Errors
///
/// Propagates pool/device errors.
pub fn run_fabric_cell_observed(
    cfg: &FabricRunConfig,
    telemetry: &Telemetry,
) -> Result<(FabricCellResult, RunObservations), DtlError> {
    let pool_cfg = cfg.pool_config();
    let fabric = CxlFabric::new(cfg.topology(), pool_cfg.link, pool_cfg.retry)
        .expect("generated dual-switch topologies validate");
    let mut pool = MemoryPool::analytic_with_interconnect(pool_cfg, Box::new(fabric))?;
    pool.set_telemetry(telemetry.clone());
    for i in 0..cfg.devices {
        let dev = pool.device_mut(DeviceId(i)).expect("configured device");
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(true);
    }
    for h in 0..cfg.hosts {
        pool.register_host(HostId(h))?;
    }
    // Admission order interleaves hosts so pack and spread place the same
    // per-host VM counts; each VM is one allocation unit.
    let au = pool.config().dtl.au_bytes;
    for _ in 0..cfg.vms_per_host {
        for h in 0..cfg.hosts {
            pool.alloc_vm(HostId(h), au, Picos::ZERO)?;
        }
    }
    let vms = pool.vm_ids();
    let window = Picos::from_us(cfg.window_us);
    let mut sim: Simulation<GridEv> = Simulation::new(Picos::ZERO);
    let lines_per_au = au / 64;
    for w in 0..cfg.windows {
        let t0 = window * u64::from(w);
        // Every VM fires its whole burst at the window-start instant;
        // interleaving VMs in the inner loop makes the FIFO pile-up at
        // shared ports alternate between hosts, the worst case for any
        // unfair queue. Touched lines rotate with the seed and window so
        // the SMC sees fresh offsets.
        for k in 0..cfg.burst {
            for (v, vm) in vms.iter().enumerate() {
                let line = (cfg.seed + u64::from(w) * 97 + k + v as u64) % lines_per_au;
                pool.access(*vm, line * 64, AccessKind::Read, t0)?;
            }
        }
        let mut client = FabricEpoch { pool: &mut pool };
        event_drive::drive_epoch(&mut sim, &mut client, t0, t0 + window, window)?;
    }
    let end = cfg.horizon();
    pool.check_invariants()?;
    let slo = pool.slo_report();
    let obs = RunObservations { slo, queue: sim.queue_stats() };
    let access = slo.access.expect("every cell drives accesses");
    let queue = slo.fabric_queue.expect("fabric-backed pool reports port waits");
    let report = pool.interconnect().fabric_report(end).expect("fabric-backed pool");
    let (host_share_min, host_share_max) = report.share_bounds();
    let dram_energy_mj = pool.pool_energy(end).total_mj();
    Ok((
        FabricCellResult {
            placement: cfg.placement,
            burst: cfg.burst,
            accesses: access.count,
            access_mean_ps: access.mean_ps,
            access_p50_ps: access.p50_ps,
            access_p99_ps: access.p99_ps,
            access_p999_ps: access.p999_ps,
            queue_mean_ps: queue.mean_ps,
            queue_p99_ps: queue.p99_ps,
            max_port_utilization: report.max_utilization,
            ports_used: report.ports_used,
            switch_port_energy_mj: report.port_energy_mj,
            dram_energy_mj,
            host_share_min,
            host_share_max,
        },
        obs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_raises_tail_latency_with_offered_load() {
        let mut cfg = FabricRunConfig::tiny(3);
        cfg.windows = 6;
        cfg.burst = 8;
        let (light, _) = run_fabric_cell_observed(&cfg, &Telemetry::disabled()).unwrap();
        cfg.burst = 512;
        let (heavy, _) = run_fabric_cell_observed(&cfg, &Telemetry::disabled()).unwrap();
        assert_eq!(light.accesses, 8 * 4 * 6);
        assert!(heavy.access_p99_ps > light.access_p99_ps, "{heavy:?} vs {light:?}");
        assert!(heavy.queue_mean_ps > light.queue_mean_ps);
        assert!(heavy.max_port_utilization > light.max_port_utilization);
    }

    #[test]
    fn packing_under_one_switch_saves_port_energy() {
        let mut cfg = FabricRunConfig::tiny(3);
        cfg.windows = 6;
        let (pack, _) = run_fabric_cell_observed(&cfg, &Telemetry::disabled()).unwrap();
        cfg.placement = PlacementPolicy::SpreadForBandwidth;
        let (spread, _) = run_fabric_cell_observed(&cfg, &Telemetry::disabled()).unwrap();
        assert!(pack.ports_used < spread.ports_used, "{pack:?} vs {spread:?}");
        assert!(pack.switch_port_energy_mj < spread.switch_port_energy_mj);
        // Equal per-host traffic must see equal fabric shares either way.
        assert!((pack.host_share_min - pack.host_share_max).abs() < 1e-12);
        assert!((spread.host_share_min - spread.host_share_max).abs() < 1e-12);
    }

    #[test]
    fn cells_are_deterministic() {
        let mut cfg = FabricRunConfig::tiny(11);
        cfg.windows = 4;
        cfg.burst = 16;
        let a = run_fabric_cell(&cfg).unwrap();
        let b = run_fabric_cell(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
