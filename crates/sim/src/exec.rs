//! # Deterministic parallel execution engine
//!
//! Shards independent work units — fuzz seeds, sweep points, the
//! baseline/treatment pair of a paired replay — across a scoped-thread
//! worker pool, with **ordered merging**: results come back in unit-index
//! order regardless of worker scheduling, so `--jobs N` output is
//! bit-identical to `--jobs 1`.
//!
//! The determinism rules every decomposition must obey:
//!
//! 1. **Units are independent.** A unit may not read anything another unit
//!    writes: no shared device, RNG, accumulator, or telemetry sink.
//! 2. **Seeds are derived, never shared.** A unit that needs randomness
//!    derives its stream as `derive_seed(base_seed, unit_index)` (or owns a
//!    preassigned seed, as the fuzz batches do) — a progressing shared RNG
//!    would make results depend on execution order.
//! 3. **Merging is by unit index.** Results land in a slot keyed by unit
//!    index and every reduction (sums, geometric means, table rows,
//!    telemetry streams, metrics registries) folds in index order.
//!
//! Under these rules the worker count only changes wall-clock time, never
//! a byte of output — pinned by `tests/parallel_determinism.rs`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dtl_telemetry::{merge_event_streams, BufferSink, MetricsRegistry, Telemetry};

/// Worker count to use when the user did not pass `--jobs`: the parallelism
/// the OS reports available, or 1 if it cannot say.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Derives unit `index`'s RNG seed from a batch base seed.
///
/// SplitMix64 finalizer over `base ^ golden·(index+1)`: consecutive indices
/// land in uncorrelated streams, and the mapping is a pure function of
/// `(base, index)` so a resharded batch reproduces the same per-unit
/// streams regardless of worker count.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `f` over every unit, on up to `jobs` workers, and returns the
/// results in unit-index order.
///
/// `f(index, unit)` must treat its unit as self-contained (see the module
/// rules); under that contract the returned vector is identical for every
/// `jobs` value. Workers pull units from a shared queue, so long and short
/// units balance automatically.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn run_units<U, T, F>(jobs: usize, units: Vec<U>, f: F) -> Vec<T>
where
    U: Send,
    T: Send,
    F: Fn(usize, U) -> T + Sync,
{
    let n = units.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        return units.into_iter().enumerate().map(|(i, u)| f(i, u)).collect();
    }
    let queue: Mutex<VecDeque<(usize, U)>> = Mutex::new(units.into_iter().enumerate().collect());
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let slots_ref = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            handles.push(scope.spawn(|| {
                let mut done: Vec<(usize, T)> = Vec::new();
                loop {
                    let next = queue.lock().unwrap().pop_front();
                    match next {
                        Some((i, u)) => done.push((i, f(i, u))),
                        None => break,
                    }
                }
                let mut slots = slots_ref.lock().unwrap();
                for (i, t) in done {
                    slots[i] = Some(t);
                }
            }));
        }
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every unit produced a result")).collect()
}

/// Like [`run_units`], but each unit records into its **own** telemetry
/// sink and metrics registry, merged deterministically at join.
///
/// When `parent` is disabled the units run with disabled handles and this
/// is exactly [`run_units`]. When it is enabled, each unit gets a fresh
/// unbounded [`BufferSink`] (plus its own [`MetricsRegistry`] if the parent
/// carries one); after **all** units complete, the per-unit event streams
/// are concatenated in unit-index order into the parent sink and the
/// per-unit registries fold into the parent registry in the same order —
/// so the parent observes exactly what a sequential run would have
/// recorded, for any worker count. This buffered path is used even at
/// `jobs = 1`, keeping the single-worker and sharded event streams
/// structurally identical.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn run_units_traced<U, T, F>(jobs: usize, parent: &Telemetry, units: Vec<U>, f: F) -> Vec<T>
where
    U: Send,
    T: Send,
    F: Fn(usize, U, &Telemetry) -> T + Sync,
{
    if !parent.enabled() {
        let disabled = Telemetry::disabled();
        return run_units(jobs, units, |i, u| f(i, u, &disabled));
    }
    let n = units.len();
    let sinks: Vec<Arc<BufferSink>> = (0..n).map(|_| Arc::new(BufferSink::new())).collect();
    let registries: Vec<Option<Arc<MetricsRegistry>>> =
        (0..n).map(|_| parent.metrics().map(|_| Arc::new(MetricsRegistry::new()))).collect();
    let results = run_units(jobs, units, |i, u| {
        let mut child = Telemetry::new(sinks[i].clone() as Arc<dyn dtl_telemetry::TelemetrySink>);
        if let Some(reg) = &registries[i] {
            child = child.with_metrics(reg.clone());
        }
        f(i, u, &child)
    });
    for event in merge_event_streams(sinks.iter().map(|s| s.take())) {
        parent.sink().record(event);
    }
    if let Some(parent_reg) = parent.metrics() {
        for reg in registries.into_iter().flatten() {
            parent_reg.merge_from(&reg);
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtl_telemetry::EventKind;

    #[test]
    fn results_come_back_in_unit_order_for_any_job_count() {
        let units: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = units.iter().map(|u| u * u).collect();
        for jobs in [1usize, 2, 4, 16, 64] {
            let got = run_units(jobs, units.clone(), |i, u| {
                assert_eq!(i as u64, u);
                u * u
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_unit_batches_work() {
        let none: Vec<u32> = Vec::new();
        assert!(run_units(4, none, |_, u| u).is_empty());
        assert_eq!(run_units(4, vec![9u32], |i, u| (i, u)), vec![(0, 9)]);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        assert_eq!(a, b, "pure function of (base, index)");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "no collisions across unit indices");
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0), "base seed matters");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_units(4, (0..8u32).collect(), |_, u| {
                assert!(u != 5, "planted failure");
                u
            })
        });
        assert!(result.is_err(), "a unit panic must fail the batch");
    }

    #[test]
    fn traced_runs_merge_events_and_metrics_in_unit_order() {
        use std::sync::Arc;
        let expected_events: Vec<(u64, u64)> =
            (0..6u64).flat_map(|u| (0..3u64).map(move |k| (u, u * 1000 + k))).collect();
        let mut outputs = Vec::new();
        for jobs in [1usize, 4] {
            let sink = Arc::new(BufferSink::new());
            let registry = Arc::new(MetricsRegistry::new());
            let parent = Telemetry::new(sink.clone() as Arc<dyn dtl_telemetry::TelemetrySink>)
                .with_metrics(registry.clone());
            let results = run_units_traced(jobs, &parent, (0..6u64).collect(), |_, u, t| {
                for k in 0..3u64 {
                    t.emit(u * 1000 + k, EventKind::VmAlloc { vm: u, segments: 1 });
                }
                if let Some(reg) = t.metrics() {
                    reg.counter("exec.test.units").inc();
                    reg.histogram("exec.test.unit_id").observe(u);
                }
                u
            });
            assert_eq!(results, (0..6u64).collect::<Vec<_>>());
            let events: Vec<(u64, u64)> = sink
                .take()
                .iter()
                .map(|e| match e.kind {
                    EventKind::VmAlloc { vm, .. } => (vm, e.at_ps),
                    _ => panic!("unexpected event"),
                })
                .collect();
            assert_eq!(events, expected_events, "jobs={jobs}: unit order, not worker order");
            assert_eq!(registry.counter("exec.test.units").get(), 6);
            outputs.push(registry.render_text());
        }
        assert_eq!(outputs[0], outputs[1], "metrics identical across job counts");
    }

    #[test]
    fn disabled_parent_stays_disabled() {
        let parent = Telemetry::disabled();
        let got = run_units_traced(4, &parent, vec![1u32, 2], |_, u, t| {
            assert!(!t.enabled());
            u
        });
        assert_eq!(got, vec![1, 2]);
    }
}
