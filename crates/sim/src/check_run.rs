//! The differential-check runner: batches of seeded lockstep fuzzing runs
//! through `dtl-check`, aggregated into one typed result row per seed.
//!
//! The heavy lifting (oracle, invariant suite, minimizer) lives in
//! [`dtl_check`]; this module is the experiment-facing wrapper that the
//! `diff_fuzz` experiment and binary consume.

use dtl_check::{fuzz, CheckSetup, Counterexample, FuzzOutcome};
use dtl_dram::PowerPolicyKind;
use serde::{Deserialize, Serialize};

/// One batch of differential-check runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckRunConfig {
    /// Seeds to run clean (no fault plan).
    pub clean_seeds: Vec<u64>,
    /// Seeds to run with a composed `dtl-fault` plan.
    pub faulted_seeds: Vec<u64>,
    /// Ops per stream (before fault splicing).
    pub ops_per_seed: usize,
    /// Power policies to sweep: every seed runs once per policy, so the
    /// oracle's power ledger and legal-transition checks cover each
    /// rank-state machine the device can be configured with.
    pub policies: Vec<PowerPolicyKind>,
}

impl CheckRunConfig {
    /// The acceptance batch: at least 20 seeds totalling ≥ 10 000 lockstep
    /// ops, at least one of them driving a deterministic fault plan —
    /// run once per built-in power policy (24 seeds × 3 policies).
    pub fn acceptance() -> Self {
        CheckRunConfig {
            clean_seeds: (0..16).collect(),
            faulted_seeds: (16..24).collect(),
            ops_per_seed: 500,
            policies: PowerPolicyKind::ALL.to_vec(),
        }
    }

    /// A time-boxed smoke batch for CI (a few seconds). Still sweeps all
    /// three policies so a smoke pass exercises every state machine.
    pub fn smoke() -> Self {
        CheckRunConfig {
            clean_seeds: vec![1, 2, 3],
            faulted_seeds: vec![4],
            ops_per_seed: 300,
            policies: PowerPolicyKind::ALL.to_vec(),
        }
    }

    /// Total ops the batch will drive (excluding fault splices).
    pub fn total_ops(&self) -> usize {
        (self.clean_seeds.len() + self.faulted_seeds.len())
            * self.ops_per_seed
            * self.policies.len().max(1)
    }
}

/// Outcome of one seed's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// Whether a fault plan was composed in.
    pub faulted: bool,
    /// The power policy the device ran under.
    pub policy: PowerPolicyKind,
    /// Ops executed.
    pub executed: u64,
    /// Accesses cross-checked.
    pub accesses: u64,
    /// Device commands replayed into the oracle.
    pub commands: u64,
    /// Full invariant-suite runs.
    pub full_checks: u64,
    /// Quiesced deep checks.
    pub deep_checks: u64,
    /// Shrunk counterexample, if the seed failed.
    pub counterexample: Option<Counterexample>,
}

/// Aggregated batch result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckRunResult {
    /// Per-seed outcomes.
    pub seeds: Vec<SeedResult>,
    /// Total lockstep ops executed across all seeds.
    pub total_ops: u64,
    /// Total accesses cross-checked.
    pub total_accesses: u64,
    /// Total invariant-suite runs.
    pub total_checks: u64,
    /// Seeds that failed (should be zero on a healthy device).
    pub violations: u64,
}

impl CheckRunResult {
    /// `true` when every seed verified clean.
    pub fn all_clean(&self) -> bool {
        self.violations == 0
    }

    /// The first counterexample, for reporting.
    pub fn first_counterexample(&self) -> Option<&Counterexample> {
        self.seeds.iter().find_map(|s| s.counterexample.as_ref())
    }
}

/// Runs the whole batch sequentially. Deterministic: equal configs yield
/// equal results. Equivalent to [`run_checks_jobs`] at `jobs = 1`.
pub fn run_checks(cfg: &CheckRunConfig) -> CheckRunResult {
    run_checks_jobs(cfg, 1)
}

/// Runs the whole batch with (seed, policy) pairs sharded across up to
/// `jobs` workers.
///
/// Each pair is an independent work unit — its own device, oracle, and
/// preassigned RNG stream — so the result (including every per-seed row
/// and the aggregation order) is **bit-identical** for every `jobs` value;
/// only wall-clock time changes.
pub fn run_checks_jobs(cfg: &CheckRunConfig, jobs: usize) -> CheckRunResult {
    let policies: &[PowerPolicyKind] =
        if cfg.policies.is_empty() { &[PowerPolicyKind::FixedThreshold] } else { &cfg.policies };
    let mut runs: Vec<(u64, bool, PowerPolicyKind)> = Vec::new();
    for &policy in policies {
        runs.extend(cfg.clean_seeds.iter().map(|&s| (s, false, policy)));
        runs.extend(cfg.faulted_seeds.iter().map(|&s| (s, true, policy)));
    }
    let seeds = crate::exec::run_units(jobs, runs, |_, (seed, faulted, policy)| {
        let setup = if faulted {
            CheckSetup::tiny_faulted(seed, cfg.ops_per_seed)
        } else {
            CheckSetup::tiny(seed, cfg.ops_per_seed)
        }
        .with_policy(policy);
        match fuzz(&setup) {
            FuzzOutcome::Clean(stats) => SeedResult {
                seed,
                faulted,
                policy,
                executed: stats.executed,
                accesses: stats.accesses,
                commands: stats.commands,
                full_checks: stats.full_checks,
                deep_checks: stats.deep_checks,
                counterexample: None,
            },
            FuzzOutcome::Failed(ce) => SeedResult {
                seed,
                faulted,
                policy,
                executed: 0,
                accesses: 0,
                commands: 0,
                full_checks: 0,
                deep_checks: 0,
                counterexample: Some(*ce),
            },
        }
    });
    let total_ops = seeds.iter().map(|s| s.executed).sum();
    let total_accesses = seeds.iter().map(|s| s.accesses).sum();
    let total_checks = seeds.iter().map(|s| s.full_checks).sum();
    let violations = seeds.iter().filter(|s| s.counterexample.is_some()).count() as u64;
    CheckRunResult { seeds, total_ops, total_accesses, total_checks, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_batch_is_clean_and_deterministic() {
        let cfg = CheckRunConfig::smoke();
        let a = run_checks(&cfg);
        assert!(a.all_clean(), "smoke batch must verify: {:?}", a.first_counterexample());
        // Fault splices can only add ops on top of the configured stream.
        assert!(a.total_ops >= cfg.total_ops() as u64);
        // The sweep covers every built-in policy for every seed.
        let seeds_per_policy = cfg.clean_seeds.len() + cfg.faulted_seeds.len();
        assert_eq!(a.seeds.len(), seeds_per_policy * PowerPolicyKind::ALL.len());
        for kind in PowerPolicyKind::ALL {
            assert_eq!(a.seeds.iter().filter(|s| s.policy == kind).count(), seeds_per_policy);
        }
        let b = run_checks(&cfg);
        assert_eq!(a, b, "equal configs must replay identically");
    }
}
