//! The rack-scale pool experiment harness: replay a synthesized VM
//! schedule against a [`MemoryPool`] of DTL devices and integrate DRAM
//! power per 5-minute interval — the cross-device extension of the
//! Figure 12 replay — plus a faulted variant that overlays a
//! [`PoolFaultPlan`](dtl_fault::PoolFaultPlan) with whole-device losses.
//!
//! As in the single-device harnesses, foreground traffic is accounted in
//! bulk per epoch; a deterministic trickle of pool-level accesses
//! additionally exercises the per-device CXL links so their round-trip and
//! retry accounting shows up in the results.

use dtl_core::{DtlConfig, DtlError, HealthStats, HostId, MemoryBackend};
use dtl_cxl::LinkRetryStats;
use dtl_dram::{AccessKind, Picos, PowerPolicyKind};
use dtl_event::Simulation;
use dtl_fault::{FaultKind, FaultPlanConfig, PoolFaultKind, PoolFaultPlanConfig};
use dtl_pool::{
    AnalyticMemoryPool, DeviceId, MemoryPool, PlacementPolicy, PoolConfig, PoolStats, PoolVmId,
};
use dtl_telemetry::Telemetry;
use dtl_trace::{NodeConfig, VmEventKind, VmId, VmSchedule};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::event_drive::{self, GridDriven, GridEv};
use crate::RunObservations;

/// Configuration of one pool schedule replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolRunConfig {
    /// Schedule seed.
    pub seed: u64,
    /// Schedule length in minutes.
    pub duration_min: u32,
    /// The whole-pool node the VM schedule is synthesized for; its memory
    /// is split evenly across the member devices.
    pub node: NodeConfig,
    /// Member devices.
    pub devices: u16,
    /// Channels per device.
    pub channels: u32,
    /// Ranks per channel per device.
    pub ranks_per_channel: u32,
    /// Placement policy for VM admission.
    pub policy: PlacementPolicy,
    /// Whether the pool-wide power coordinator is enabled.
    pub coordinator: bool,
    /// Compute hosts sharing the pool (VMs are assigned round-robin).
    pub hosts: u16,
    /// Foreground bandwidth per vCPU, bytes/s (drives active power).
    pub per_vcpu_bw: f64,
    /// Fraction of foreground traffic that is reads.
    pub read_fraction: f64,
    /// Per-device rank power-management policy.
    pub power_policy: PowerPolicyKind,
    /// Translated reads per live VM per epoch in the access trickle. At 1
    /// every access is a cold touch (worst case for wake latency); larger
    /// bursts amortize any low-power exit over the burst, as a cache-line
    /// stream through one AU would.
    pub trickle_burst: u64,
}

impl PoolRunConfig {
    /// Paper-scale pool: four Figure 12 nodes (4x8 ranks, 384 GiB each)
    /// behind one orchestrator.
    pub fn paper(seed: u64) -> Self {
        PoolRunConfig {
            seed,
            duration_min: 360,
            node: NodeConfig { vcpus: 4 * 48, mem_bytes: 4 * (384 << 30) },
            devices: 4,
            channels: 4,
            ranks_per_channel: 8,
            policy: PlacementPolicy::PackForPower,
            coordinator: true,
            hosts: 4,
            per_vcpu_bw: 650.0e6,
            read_fraction: 0.67,
            power_policy: PowerPolicyKind::FixedThreshold,
            trickle_burst: 1,
        }
    }

    /// A fast, scaled-down pool for tests: four 40 GiB devices (2x4 ranks)
    /// serving a 160 GB schedule.
    pub fn tiny(seed: u64) -> Self {
        PoolRunConfig {
            seed,
            duration_min: 60,
            node: NodeConfig { vcpus: 16, mem_bytes: 160 << 30 },
            devices: 4,
            channels: 2,
            ranks_per_channel: 4,
            policy: PlacementPolicy::PackForPower,
            coordinator: true,
            hosts: 2,
            per_vcpu_bw: 250.0e6,
            read_fraction: 0.67,
            power_policy: PowerPolicyKind::FixedThreshold,
            trickle_burst: 1,
        }
    }

    /// The derived [`PoolConfig`]: paper DTL parameters (2 MiB segments,
    /// 2 GiB allocation units) over the node's capacity split across the
    /// member devices.
    pub fn pool_config(&self) -> PoolConfig {
        let dtl = DtlConfig::paper();
        let mut cfg = PoolConfig::paper(self.devices);
        cfg.channels = self.channels;
        cfg.ranks_per_channel = self.ranks_per_channel;
        cfg.segs_per_rank = self.node.mem_bytes
            / u64::from(self.devices)
            / (u64::from(self.channels) * u64::from(self.ranks_per_channel))
            / dtl.segment_bytes;
        cfg.policy = self.policy;
        cfg.coordinator.enabled = self.coordinator;
        cfg.dtl.power_policy = self.power_policy;
        cfg
    }
}

/// One 5-minute interval sample of a pool replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolIntervalSample {
    /// Interval start, minutes.
    pub t_min: u32,
    /// Devices in the coordinator's `Active` state at interval end.
    pub active_devices: u32,
    /// Devices parked by the coordinator at interval end.
    pub parked_devices: u32,
    /// Mean DRAM power over the interval across the whole pool, milliwatts.
    pub power_mw: f64,
    /// Committed VM memory at interval start, bytes.
    pub committed_bytes: u64,
    /// Shard evacuations in flight at interval end.
    pub evacuations_in_flight: u64,
}

/// Result of one pool schedule replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolRunResult {
    /// Per-interval samples.
    pub intervals: Vec<PoolIntervalSample>,
    /// Total DRAM energy across the pool, millijoules.
    pub total_energy_mj: f64,
    /// Background share of the total.
    pub background_mj: f64,
    /// Active (event) share.
    pub active_mj: f64,
    /// VMs placed.
    pub vms_allocated: u64,
    /// VM admissions rejected for capacity.
    pub vms_rejected: u64,
    /// Mapped segments pool-wide at the end of the run.
    pub mapped_segments: u64,
    /// Aggregate pool statistics (evacuations, parks, wakes, failovers).
    pub stats: PoolStats,
    /// Error-health counters summed over every device.
    pub errors: HealthStats,
    /// Link retry totals summed over every device's CXL attachment.
    pub link: LinkRetryStats,
}

impl PoolRunResult {
    /// Mean power over the run in milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|i| i.power_mw).sum::<f64>() / self.intervals.len() as f64
    }

    /// Mean coordinator-active device count over the run.
    pub fn mean_active_devices(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|i| f64::from(i.active_devices)).sum::<f64>()
            / self.intervals.len() as f64
    }
}

/// Replays a VM schedule against a memory pool.
///
/// # Errors
///
/// Propagates device and pool errors (these indicate bugs — the harness
/// never over-commits the pool).
pub fn run_pool(cfg: &PoolRunConfig) -> Result<PoolRunResult, DtlError> {
    run_pool_traced(cfg, &Telemetry::disabled())
}

/// Like [`run_pool`], but with a live telemetry handle: every member
/// device streams its events through a channel-offset shim (device *i*
/// maps to channels `i * channels ..`), so the merged trace renders one
/// Perfetto track group per device.
///
/// # Errors
///
/// Propagates device and pool errors (these indicate bugs — the harness
/// never over-commits the pool).
pub fn run_pool_traced(
    cfg: &PoolRunConfig,
    telemetry: &Telemetry,
) -> Result<PoolRunResult, DtlError> {
    run_pool_observed(cfg, telemetry).map(|(result, _)| result)
}

/// Like [`run_pool_traced`], additionally returning the out-of-band
/// [`RunObservations`]: the pool's SLO report (access, admission,
/// evacuation backlog) and the event spine's queue counters. The
/// serialized [`PoolRunResult`] is unchanged, so goldens stay byte-stable.
///
/// # Errors
///
/// Propagates device and pool errors (these indicate bugs — the harness
/// never over-commits the pool).
pub fn run_pool_observed(
    cfg: &PoolRunConfig,
    telemetry: &Telemetry,
) -> Result<(PoolRunResult, RunObservations), DtlError> {
    let mut driver = PoolDriver::new(cfg, telemetry)?;
    while driver.t_min < cfg.duration_min {
        driver.epoch()?;
    }
    let obs = driver.observations();
    let result = driver.finish(telemetry)?;
    Ok((result, obs))
}

/// The shared epoch-stepping machinery of the quiet and faulted replays.
struct PoolDriver<'a> {
    cfg: &'a PoolRunConfig,
    pool: AnalyticMemoryPool,
    schedule_events: std::vec::IntoIter<dtl_trace::VmEvent>,
    pending: Option<dtl_trace::VmEvent>,
    handles: HashMap<VmId, (PoolVmId, u32, u64)>,
    committed: u64,
    vcpus_active: u32,
    vms_rejected: u64,
    intervals: Vec<PoolIntervalSample>,
    prev_energy: f64,
    t_min: u32,
    epoch: Picos,
    tick_step: Picos,
    /// The event-spine clock shared by every epoch of the replay.
    sim: Simulation<GridEv>,
    /// Next scheduled fault instant, if any — the faulted replay plugs the
    /// injector's `peek_next_at` in here so faults ride the event spine's
    /// side lane at their exact times instead of the 10 s tick grid.
    faults_next: Option<DeadlineFn<'a>>,
    /// Releases every fault due at the given instant.
    faults_fire: Option<FaultHook<'a>>,
}

/// Boxed callback used by the faulted replay to inject due faults.
type FaultHook<'a> = Box<dyn FnMut(&mut AnalyticMemoryPool, Picos) -> Result<(), DtlError> + 'a>;

/// Boxed query for the next scheduled fault instant.
type DeadlineFn<'a> = Box<dyn FnMut() -> Option<Picos> + 'a>;

impl<'a> PoolDriver<'a> {
    fn new(cfg: &'a PoolRunConfig, telemetry: &Telemetry) -> Result<Self, DtlError> {
        let mut pool = MemoryPool::analytic(cfg.pool_config())?;
        pool.set_telemetry(telemetry.clone());
        for i in 0..cfg.devices {
            let dev = pool.device_mut(DeviceId(i)).expect("configured device");
            dev.set_hotness_enabled(false);
            dev.set_powerdown_enabled(true);
        }
        for h in 0..cfg.hosts.max(1) {
            pool.register_host(HostId(h))?;
        }
        let schedule = VmSchedule::synthesize(cfg.seed, cfg.node, cfg.duration_min);
        Ok(PoolDriver {
            cfg,
            pool,
            schedule_events: schedule.events().to_vec().into_iter(),
            pending: None,
            handles: HashMap::new(),
            committed: 0,
            vcpus_active: 0,
            vms_rejected: 0,
            intervals: Vec::new(),
            prev_energy: 0.0,
            t_min: 0,
            epoch: Picos::from_secs(300),
            tick_step: Picos::from_secs(10),
            sim: Simulation::new(Picos::ZERO),
            faults_next: None,
            faults_fire: None,
        })
    }

    fn next_event(&mut self) -> Option<dtl_trace::VmEvent> {
        if self.pending.is_none() {
            self.pending = self.schedule_events.next();
        }
        match &self.pending {
            Some(ev) if ev.at_min <= self.t_min => self.pending.take(),
            _ => None,
        }
    }

    /// Runs one 5-minute epoch: schedule events, bulk foreground traffic,
    /// a deterministic access trickle, and the tick loop.
    fn epoch(&mut self) -> Result<(), DtlError> {
        let t_start = Picos::from_secs(u64::from(self.t_min) * 60);
        while let Some(ev) = self.next_event() {
            match ev.kind {
                VmEventKind::Alloc(vm) => {
                    // VMs land round-robin on the pool's compute hosts. AU
                    // rounding can overshoot a schedule at the capacity
                    // edge; such VMs go elsewhere in the cluster.
                    let host = HostId((vm.id.0 % u32::from(self.cfg.hosts.max(1))) as u16);
                    match self.pool.alloc_vm(host, vm.mem_bytes, t_start) {
                        Ok(id) => {
                            self.committed += vm.mem_bytes;
                            self.vcpus_active += vm.vcpus;
                            self.handles.insert(vm.id, (id, vm.vcpus, vm.mem_bytes));
                        }
                        Err(dtl_pool::PoolError::NoCapacity { .. }) => self.vms_rejected += 1,
                        Err(e) => return Err(e.into()),
                    }
                }
                VmEventKind::Dealloc(id) => {
                    if let Some((vm, vcpus, bytes)) = self.handles.remove(&id) {
                        self.pool.dealloc_vm(vm, t_start).map_err(DtlError::from)?;
                        self.committed -= bytes;
                        self.vcpus_active -= vcpus;
                    }
                }
            }
        }
        self.record_epoch_traffic(t_start);
        self.access_trickle(t_start)?;
        let t_end = t_start + self.epoch;
        let mut client = PoolEpoch {
            pool: &mut self.pool,
            faults_next: &mut self.faults_next,
            faults_fire: &mut self.faults_fire,
        };
        event_drive::drive_epoch(&mut self.sim, &mut client, t_start, t_end, self.tick_step)?;
        let energy = self.pool.pool_energy(t_end).total_mj();
        let power_mw = (energy - self.prev_energy) / self.epoch.as_secs_f64();
        self.prev_energy = energy;
        let snap = self.pool.snapshot();
        let active =
            snap.devices.iter().filter(|d| d.coord == dtl_pool::CoordState::Active).count();
        let parked =
            snap.devices.iter().filter(|d| d.coord == dtl_pool::CoordState::Parked).count();
        self.intervals.push(PoolIntervalSample {
            t_min: self.t_min,
            active_devices: active as u32,
            parked_devices: parked as u32,
            power_mw,
            committed_bytes: self.committed,
            evacuations_in_flight: snap.evacuations_pending as u64,
        });
        self.t_min += 5;
        Ok(())
    }

    /// Bulk foreground energy for this epoch, split across every
    /// data-retaining rank of the pool (the traffic concentrates wherever
    /// data lives). MPSM-parked ranks hold no data and carry none of it;
    /// ranks a ladder policy has demoted to a shallow state or self-refresh
    /// still do — the bulk charge is an epoch-level approximation that does
    /// not wake them, but it does reset their policy idle clocks.
    fn record_epoch_traffic(&mut self, now: Picos) {
        let bytes = f64::from(self.vcpus_active) * self.cfg.per_vcpu_bw * self.epoch.as_secs_f64();
        let lines = (bytes / 64.0) as u64;
        let reads = (lines as f64 * self.cfg.read_fraction) as u64;
        let writes = lines - reads;
        let mut active: Vec<(u16, u32, u32)> = Vec::new();
        for i in 0..self.cfg.devices {
            let dev = self.pool.device(DeviceId(i)).expect("configured device");
            for c in 0..self.cfg.channels {
                for r in 0..self.cfg.ranks_per_channel {
                    if dev.backend().rank_state(c, r).retains_data() {
                        active.push((i, c, r));
                    }
                }
            }
        }
        if active.is_empty() {
            return;
        }
        let per = active.len() as u64;
        for (i, c, r) in active {
            let dev = self.pool.device_mut(DeviceId(i)).expect("configured device");
            dev.backend_mut().record_foreground_bulk(c, r, reads / per, writes / per);
            dev.note_rank_traffic(c, r, now);
        }
    }

    /// `trickle_burst` translated reads per live VM per epoch, starting at
    /// a rotating AU offset: keeps the per-device CXL links and the SMC
    /// path exercised without simulating per-line traffic. The first read
    /// of a burst pays any low-power exit the target rank is in; the rest
    /// of the burst rides the woken rank, so larger bursts dilute wake
    /// latency in the access SLO population exactly as a streaming
    /// workload would.
    fn access_trickle(&mut self, t_start: Picos) -> Result<(), DtlError> {
        let au = self.pool.config().dtl.au_bytes;
        let round = u64::from(self.t_min) / 5;
        let burst = self.cfg.trickle_burst.max(1);
        let vms: Vec<PoolVmId> = self.pool.vm_ids();
        for vm in vms {
            let bytes = self.pool.vm_bytes(vm).expect("listed VM is live");
            let aus = (bytes / au).max(1);
            let base = (round % aus) * au;
            for k in 0..burst {
                let offset = base + (k * 64) % au;
                self.pool.access(vm, offset, AccessKind::Read, t_start).map_err(DtlError::from)?;
            }
        }
        Ok(())
    }

    fn install_fault_lane(
        &mut self,
        injector: dtl_fault::PoolFaultInjector,
        mut fire: impl FnMut(&mut AnalyticMemoryPool, dtl_fault::PoolFaultEvent, Picos) -> Result<(), DtlError>
            + 'a,
    ) {
        let injector = Rc::new(RefCell::new(injector));
        let peek = injector.clone();
        self.faults_next = Some(Box::new(move || peek.borrow().peek_next_at()));
        self.faults_fire = Some(Box::new(move |pool, now| {
            let due = injector.borrow_mut().pop_due(now);
            for fault in due {
                fire(pool, fault, now)?;
            }
            Ok(())
        }));
    }

    /// The out-of-band observability bundle: the pool's SLO populations
    /// plus the epoch spine's queue counters. Read before [`Self::finish`]
    /// consumes the driver.
    fn observations(&self) -> RunObservations {
        RunObservations { slo: self.pool.slo_report(), queue: self.sim.queue_stats() }
    }

    fn finish(mut self, telemetry: &Telemetry) -> Result<PoolRunResult, DtlError> {
        let final_t = Picos::from_secs(u64::from(self.cfg.duration_min) * 60);
        let energy = self.pool.pool_energy(final_t);
        self.pool.check_invariants().map_err(DtlError::from)?;
        if let Some(m) = telemetry.metrics() {
            self.pool.export_metrics(m);
            crate::export_queue_metrics(m, &self.sim.queue_stats());
        }
        let snap = self.pool.snapshot();
        Ok(PoolRunResult {
            intervals: self.intervals,
            total_energy_mj: energy.total_mj(),
            background_mj: energy.background_mj,
            active_mj: energy.active_mj(),
            vms_allocated: snap.stats.admitted_vms,
            vms_rejected: self.vms_rejected,
            mapped_segments: snap.mapped_segments,
            stats: snap.stats,
            errors: snap.errors,
            link: snap.link,
        })
    }
}

/// One epoch of a pool replay as the event spine's grid client: grid
/// ticks advance the pool, the side lane releases scheduled faults at
/// their exact instants.
struct PoolEpoch<'x, 'a> {
    pool: &'x mut AnalyticMemoryPool,
    faults_next: &'x mut Option<DeadlineFn<'a>>,
    faults_fire: &'x mut Option<FaultHook<'a>>,
}

impl GridDriven for PoolEpoch<'_, '_> {
    type Error = DtlError;

    fn tick(&mut self, now: Picos) -> Result<(), DtlError> {
        self.pool.tick(now).map_err(DtlError::from)
    }

    fn side_deadline(&mut self) -> Option<Picos> {
        self.faults_next.as_mut().and_then(|next| next())
    }

    fn side_fire(&mut self, now: Picos) -> Result<(), DtlError> {
        match self.faults_fire.as_mut() {
            Some(fire) => fire(self.pool, now),
            None => Ok(()),
        }
    }
}

/// Configuration of one faulted pool replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolFaultRunConfig {
    /// The underlying pool replay.
    pub run: PoolRunConfig,
    /// The pool-level fault schedule. Its geometry must match `run`.
    pub faults: PoolFaultPlanConfig,
}

impl PoolFaultRunConfig {
    /// A fault-free pool replay (quiet plan).
    pub fn fault_free(seed: u64, run: PoolRunConfig) -> Self {
        let duration = Picos::from_secs(u64::from(run.duration_min) * 60);
        let per_device =
            FaultPlanConfig::quiet(seed, duration, run.channels, run.ranks_per_channel);
        PoolFaultRunConfig {
            run,
            faults: PoolFaultPlanConfig::quiet(seed, run.devices, per_device),
        }
    }

    /// A device-retirement campaign: background ECC noise and link CRC
    /// corruption on every device, plus `retirements` whole-device losses
    /// spread over the middle of the horizon.
    pub fn retirement_campaign(seed: u64, run: PoolRunConfig, retirements: u16) -> Self {
        let mut cfg = PoolFaultRunConfig::fault_free(seed, run);
        cfg.faults.per_device.correctable_per_rank_per_sec = 0.001;
        cfg.faults.per_device.link_crc_per_sec = 0.02;
        cfg.faults.per_device.link_crc_max_burst = 4;
        cfg.faults.device_retirements = retirements;
        cfg
    }
}

/// Result of one faulted pool replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolFaultRunResult {
    /// Total DRAM energy across the pool, millijoules.
    pub total_energy_mj: f64,
    /// VMs placed.
    pub vms_allocated: u64,
    /// Faults injected over the run (device-local and retirements).
    pub faults_injected: u64,
    /// Whole devices retired by the plan.
    pub devices_retired: u64,
    /// Health-driven failovers tripped by rank-health thresholds.
    pub failovers: u64,
    /// Shard evacuations completed.
    pub evacuations_completed: u64,
    /// Segments moved by completed evacuations.
    pub segments_evacuated: u64,
    /// Allocation units found unreachable by the sweeps after each
    /// retirement and at the end of the run — the zero-loss criterion.
    pub lost_aus: u64,
    /// Pool-wide error counters at the end of the run.
    pub errors: HealthStats,
    /// Link retry totals summed over every device.
    pub link: LinkRetryStats,
    /// Aggregate pool statistics.
    pub stats: PoolStats,
}

/// Replays a VM schedule against a pool while a deterministic pool-level
/// fault plan fires device faults and whole-device retirements into the
/// run. After every fault the pool's `check_invariants` is asserted, and
/// after every retirement (plus at the end) a full reachability sweep
/// counts lost allocation units.
///
/// # Errors
///
/// Propagates device and pool errors; an invariant violation after any
/// injected fault surfaces here.
pub fn run_pool_faulted(cfg: &PoolFaultRunConfig) -> Result<PoolFaultRunResult, DtlError> {
    run_pool_faulted_traced(cfg, &Telemetry::disabled())
}

/// Like [`run_pool_faulted`], with a live telemetry handle (per-device
/// channel-offset tracks, as in [`run_pool_traced`]).
///
/// # Errors
///
/// Propagates device and pool errors; an invariant violation after any
/// injected fault surfaces here.
pub fn run_pool_faulted_traced(
    cfg: &PoolFaultRunConfig,
    telemetry: &Telemetry,
) -> Result<PoolFaultRunResult, DtlError> {
    let injector = cfg.faults.generate().injector();
    let faults_injected = Rc::new(Cell::new(0u64));
    let lost_aus = Rc::new(Cell::new(0u64));
    let mut driver = PoolDriver::new(&cfg.run, telemetry)?;
    let (faults_ctr, lost_ctr) = (faults_injected.clone(), lost_aus.clone());
    driver.install_fault_lane(injector, move |pool, fault, t| {
        apply_pool_fault(pool, fault.kind, t, &lost_ctr)?;
        faults_ctr.set(faults_ctr.get() + 1);
        pool.check_invariants().map_err(DtlError::from)
    });
    while driver.t_min < cfg.run.duration_min {
        driver.epoch()?;
    }
    let final_t = Picos::from_secs(u64::from(cfg.run.duration_min) * 60);
    lost_aus.set(lost_aus.get() + count_unreachable(&mut driver.pool, final_t));
    let run = driver.finish(telemetry)?;
    Ok(PoolFaultRunResult {
        total_energy_mj: run.total_energy_mj,
        vms_allocated: run.vms_allocated,
        faults_injected: faults_injected.get(),
        devices_retired: run.stats.devices_retired,
        failovers: run.stats.failovers,
        evacuations_completed: run.stats.evacuations_completed,
        segments_evacuated: run.stats.segments_evacuated,
        lost_aus: lost_aus.get(),
        errors: run.errors,
        link: run.link,
        stats: run.stats,
    })
}

fn apply_pool_fault(
    pool: &mut AnalyticMemoryPool,
    kind: PoolFaultKind,
    now: Picos,
    lost_aus: &Rc<Cell<u64>>,
) -> Result<(), DtlError> {
    match kind {
        PoolFaultKind::Device { device, kind } => {
            let id = DeviceId(device);
            match kind {
                FaultKind::CorrectableEcc { channel, rank } => {
                    pool.device_mut(id)
                        .ok_or(DtlError::Internal { reason: format!("no device {device}") })?
                        .inject_correctable_error(channel, rank, now)?;
                }
                FaultKind::UncorrectableEcc { channel, rank } => {
                    pool.device_mut(id)
                        .ok_or(DtlError::Internal { reason: format!("no device {device}") })?
                        .inject_uncorrectable_error(channel, rank, now)?;
                }
                FaultKind::LinkCrc { burst } => {
                    pool.inject_crc_burst(id, burst).map_err(DtlError::from)?;
                }
                FaultKind::MigrationInterrupt { channel } => {
                    pool.device_mut(id)
                        .ok_or(DtlError::Internal { reason: format!("no device {device}") })?
                        .inject_migration_interrupt(channel, now)?;
                }
            }
        }
        PoolFaultKind::RetireDevice { device } => {
            pool.retire_device(DeviceId(device), now).map_err(DtlError::from)?;
            // Every shard must stay reachable through the retirement —
            // sweep immediately, while evacuations are still in flight.
            lost_aus.set(lost_aus.get() + count_unreachable(pool, now));
        }
    }
    Ok(())
}

/// Counts allocation units no access can reach — the lost-segment oracle.
fn count_unreachable(pool: &mut AnalyticMemoryPool, now: Picos) -> u64 {
    let au = pool.config().dtl.au_bytes;
    let mut lost = 0u64;
    for vm in pool.vm_ids() {
        let bytes = pool.vm_bytes(vm).expect("listed VM is live");
        for i in 0..(bytes / au) {
            if pool.access(vm, i * au, AccessKind::Read, now).is_err() {
                lost += 1;
            }
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_replay_places_and_consolidates() {
        let r = run_pool(&PoolRunConfig::tiny(7)).unwrap();
        assert!(r.vms_allocated > 0, "schedule places VMs");
        assert_eq!(r.intervals.len(), 12, "one sample per 5 minutes");
        assert!(r.total_energy_mj > 0.0);
        assert!(
            r.intervals.iter().any(|i| i.parked_devices > 0),
            "the coordinator parks at least one device at tiny load"
        );
        assert!(r.link.crc_errors == 0, "quiet run has no CRC faults");
    }

    #[test]
    fn coordinator_saves_pool_energy() {
        let mut on = PoolRunConfig::tiny(7);
        on.coordinator = true;
        let mut off = on;
        off.coordinator = false;
        let r_on = run_pool(&on).unwrap();
        let r_off = run_pool(&off).unwrap();
        assert_eq!(r_on.vms_allocated, r_off.vms_allocated, "same schedule");
        assert!(
            r_on.total_energy_mj < r_off.total_energy_mj,
            "parking drained devices must save energy: {} vs {}",
            r_on.total_energy_mj,
            r_off.total_energy_mj
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_pool(&PoolRunConfig::tiny(11)).unwrap();
        let b = run_pool(&PoolRunConfig::tiny(11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_policy_saves_energy_at_equal_placement() {
        let fixed = PoolRunConfig::tiny(7);
        let mut adaptive = fixed;
        adaptive.power_policy = PowerPolicyKind::AdaptiveDemotion;
        let rf = run_pool(&fixed).unwrap();
        let ra = run_pool(&adaptive).unwrap();
        assert_eq!(rf.vms_allocated, ra.vms_allocated, "same schedule either way");
        assert!(
            ra.total_energy_mj < rf.total_energy_mj,
            "idle-rank demotion must save energy: {} vs {}",
            ra.total_energy_mj,
            rf.total_energy_mj
        );
    }

    #[test]
    fn trickle_burst_only_adds_accesses() {
        let one = PoolRunConfig::tiny(7);
        let mut burst = one;
        burst.trickle_burst = 8;
        let (_, obs1) = run_pool_observed(&one, &Telemetry::disabled()).unwrap();
        let (_, obs8) = run_pool_observed(&burst, &Telemetry::disabled()).unwrap();
        let (a1, a8) = (obs1.slo.access.unwrap(), obs8.slo.access.unwrap());
        assert_eq!(a8.count, a1.count * 8, "burst scales the trickle population");
    }

    #[test]
    fn observed_run_reports_slo_and_queue_counters() {
        let (r, obs) = run_pool_observed(&PoolRunConfig::tiny(7), &Telemetry::disabled()).unwrap();
        let plain = run_pool(&PoolRunConfig::tiny(7)).unwrap();
        assert_eq!(r, plain, "observability must not change the result");
        let access = obs.slo.access.expect("the access trickle populates latency");
        assert!(access.count > 0);
        assert!(access.p50_ps > 0, "access latency includes the link round trip");
        let admission = obs.slo.admission.expect("admissions populate latency");
        assert_eq!(admission.count, r.vms_allocated);
        assert!(obs.queue.posted > 0, "epoch grid rides the event spine");
        assert!(obs.queue.popped <= obs.queue.posted);
    }

    #[test]
    fn retirement_campaign_loses_nothing() {
        let cfg = PoolFaultRunConfig::retirement_campaign(7, PoolRunConfig::tiny(7), 2);
        let r = run_pool_faulted(&cfg).unwrap();
        assert_eq!(r.devices_retired, 2, "both scheduled retirements fired");
        assert_eq!(r.lost_aus, 0, "no allocation unit may ever be lost");
        assert!(r.evacuations_completed > 0, "retirement forces evacuations");
        assert!(r.faults_injected > 0);
    }

    #[test]
    fn faulted_replay_is_deterministic() {
        let cfg = PoolFaultRunConfig::retirement_campaign(13, PoolRunConfig::tiny(13), 1);
        let a = run_pool_faulted(&cfg).unwrap();
        let b = run_pool_faulted(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
