//! Property tests: under arbitrary seeded sequences of remaps and swaps,
//! the mapping tables stay a bijection, and the SMC-cached translator
//! agrees with the tables on every HPA → DPA → HPA round trip (the cache
//! is a transparent accelerator, never a second source of truth).

use std::collections::{HashMap, HashSet};

use dtl_core::{AuId, Dsn, DtlConfig, HostId, HostPhysAddr, Hsn, MappingTables, Translator};
use dtl_dram::Picos;
use proptest::prelude::*;

const SEGS_PER_AU: u64 = 8;
const AUS: u32 = 4;
const DSN_SPACE: u64 = 96; // > AUS * SEGS_PER_AU: leaves free DSNs to remap into

/// Builds tables with `AUS` AUs for one host, mapped to the low DSNs.
fn seed_tables() -> (MappingTables, HashMap<Hsn, Dsn>) {
    let host = HostId(0);
    let mut tables = MappingTables::new(SEGS_PER_AU);
    tables.register_host(host);
    let mut model = HashMap::new();
    for au in 0..AUS {
        let dsns: Vec<Dsn> =
            (0..SEGS_PER_AU).map(|k| Dsn(u64::from(au) * SEGS_PER_AU + k)).collect();
        for (k, d) in dsns.iter().enumerate() {
            model.insert(Hsn { host, au: AuId(au), au_offset: k as u32 }, *d);
        }
        tables.create_au(host, AuId(au), dsns).expect("seed AU");
    }
    (tables, model)
}

/// One mutation step over the tables, mirrored into the flat model.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Remap the `i`-th mapped HSN to the `j`-th currently-free DSN.
    Remap { i: u8, j: u8 },
    /// Swap two DSNs (mapped or free — any combination is legal).
    Swap { a: u8, b: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(i, j)| Step::Remap { i, j }),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Swap { a, b }),
    ]
}

fn apply(step: Step, tables: &mut MappingTables, model: &mut HashMap<Hsn, Dsn>) {
    match step {
        Step::Remap { i, j } => {
            let mut mapped: Vec<Hsn> = model.keys().copied().collect();
            mapped.sort();
            let hsn = mapped[usize::from(i) % mapped.len()];
            let used: HashSet<Dsn> = model.values().copied().collect();
            let free: Vec<Dsn> = (0..DSN_SPACE).map(Dsn).filter(|d| !used.contains(d)).collect();
            let dst = free[usize::from(j) % free.len()];
            let old = tables.remap(hsn, dst).expect("remap to free DSN");
            assert_eq!(old, model.insert(hsn, dst).expect("hsn was mapped"));
        }
        Step::Swap { a, b } => {
            let (a, b) = (Dsn(u64::from(a) % DSN_SPACE), Dsn(u64::from(b) % DSN_SPACE));
            let (ha, hb) = tables.swap(a, b).expect("swap any two DSNs");
            assert_eq!(ha, model.iter().find(|(_, d)| **d == a).map(|(h, _)| *h));
            assert_eq!(hb, model.iter().find(|(_, d)| **d == b).map(|(h, _)| *h));
            if let Some(h) = ha {
                model.insert(h, b);
            }
            if let Some(h) = hb {
                model.insert(h, a);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any remap/swap sequence preserves bijectivity: forward and reverse
    /// stay exact inverses, and the table agrees with an independently
    /// maintained flat model.
    #[test]
    fn remap_swap_sequences_preserve_bijectivity(
        steps in proptest::collection::vec(step_strategy(), 0..48),
    ) {
        let (mut tables, mut model) = seed_tables();
        for step in steps {
            apply(step, &mut tables, &mut model);
            tables.check_consistency().expect("tables stay consistent");
        }
        // Exact agreement with the model, both directions.
        prop_assert_eq!(tables.mapped_segments(), model.len() as u64);
        let mut seen_dsns = HashSet::new();
        for (hsn, dsn) in &model {
            prop_assert_eq!(tables.translate(*hsn), Some(*dsn));
            prop_assert_eq!(tables.reverse(*dsn), Some(*hsn));
            prop_assert!(seen_dsns.insert(*dsn), "two HSNs share {}", dsn);
        }
    }

    /// HPA → DPA → HPA round trip through the cached translator: for any
    /// access pattern interleaved with remaps (each followed by the SMC
    /// invalidation the device performs), the translator's DSN matches the
    /// tables, and the reverse walk recovers the original HSN.
    #[test]
    fn hpa_dpa_roundtrip_through_smc(
        accesses in proptest::collection::vec((0u32..AUS, 0u64..SEGS_PER_AU, 0u64..4096), 1..64),
        remaps in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
    ) {
        let cfg = DtlConfig::tiny();
        let (mut tables, mut model) = seed_tables();
        let mut translator = Translator::new(&cfg);
        let host = HostId(0);
        let mut remaps = remaps.into_iter();
        for (k, (au, seg, byte)) in accesses.into_iter().enumerate() {
            // Interleave a remap (plus the SMC invalidation the device
            // pairs with it) every other access.
            if k % 2 == 0 {
                if let Some((i, j)) = remaps.next() {
                    apply(Step::Remap { i, j }, &mut tables, &mut model);
                    let mut mapped: Vec<Hsn> = model.keys().copied().collect();
                    mapped.sort();
                    translator.invalidate(mapped[usize::from(i) % mapped.len()]);
                }
            }
            let hpa = HostPhysAddr::new(
                u64::from(au) * cfg.au_bytes + seg * cfg.segment_bytes + byte % cfg.segment_bytes,
            );
            let t = translator
                .translate(host, hpa, &tables, Picos::from_ns(50))
                .expect("every seeded HPA is mapped");
            // Forward agreement with the uncached tables...
            prop_assert_eq!(Some(t.dsn), tables.translate(t.hsn));
            prop_assert_eq!(t.offset, byte % cfg.segment_bytes);
            // ...and the reverse walk recovers the HSN, whose fields
            // reconstruct the original HPA's segment base.
            let back = tables.reverse(t.dsn).expect("reverse of a mapped DSN");
            prop_assert_eq!(back, t.hsn);
            let rebuilt = u64::from(back.au.0) * cfg.au_bytes
                + u64::from(back.au_offset) * cfg.segment_bytes;
            prop_assert_eq!(rebuilt, hpa.as_u64() - t.offset);
        }
    }
}
