//! Property tests on the DTL's individual structures: the segment mapping
//! cache against a reference model, the allocator's partition invariant,
//! and mapping-table forward/reverse consistency under random churn.

use std::collections::HashMap;

use dtl_core::{
    AuId, Dsn, HostId, Hsn, MappingTables, SegmentAllocator, SegmentGeometry, SegmentMappingCache,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The SMC always returns the most recently filled translation, or a
    /// miss — never a stale or wrong DSN.
    #[test]
    fn smc_agrees_with_reference(ops in prop::collection::vec(
        (0u32..64, 0u64..1024, any::<bool>()), 1..300
    )) {
        let mut smc = SegmentMappingCache::new(4, 32, 4);
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for (off, dsn, is_fill) in ops {
            let hsn = Hsn { host: HostId(0), au: AuId(0), au_offset: off };
            if is_fill {
                smc.fill(hsn, Dsn(dsn));
                reference.insert(off, dsn);
            } else {
                let (_, got) = smc.lookup(hsn);
                if let Some(d) = got {
                    prop_assert_eq!(
                        Some(&d.0),
                        reference.get(&off),
                        "SMC returned a translation never filled or stale"
                    );
                }
            }
        }
    }

    /// Invalidation removes exactly the requested key.
    #[test]
    fn smc_invalidate_is_precise(keys in prop::collection::vec(0u32..32, 2..40)) {
        let mut smc = SegmentMappingCache::new(8, 32, 4);
        for k in &keys {
            smc.fill(Hsn { host: HostId(0), au: AuId(0), au_offset: *k }, Dsn(u64::from(*k)));
        }
        let victim = keys[0];
        smc.invalidate(Hsn { host: HostId(0), au: AuId(0), au_offset: victim });
        let (_, got) = smc.lookup(Hsn { host: HostId(0), au: AuId(0), au_offset: victim });
        prop_assert_eq!(got, None);
        // Any other key still present must map to its own value.
        for k in &keys[1..] {
            if *k == victim { continue; }
            let (_, got) = smc.lookup(Hsn { host: HostId(0), au: AuId(0), au_offset: *k });
            if let Some(d) = got {
                prop_assert_eq!(d, Dsn(u64::from(*k)));
            }
        }
    }

    /// Allocator: free + allocated always tile every rank, across random
    /// allocate / free cycles.
    #[test]
    fn allocator_partition_invariant(ops in prop::collection::vec(any::<bool>(), 1..120)) {
        let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 };
        let mut alloc = SegmentAllocator::new(geo);
        let mut live: Vec<Vec<Dsn>> = Vec::new();
        for do_alloc in ops {
            if do_alloc {
                if let Ok(dsns) = alloc.allocate_au(8) {
                    live.push(dsns);
                }
            } else if let Some(dsns) = live.pop() {
                alloc.free_segments(&dsns).unwrap();
            }
            alloc.check_consistency().unwrap();
            // Channel balance: every live AU has 4 segments per channel.
            for au in &live {
                let mut per = [0u32; 2];
                for d in au {
                    per[geo.location(*d).channel as usize] += 1;
                }
                prop_assert_eq!(per[0], per[1]);
            }
        }
    }

    /// Mapping tables stay forward/reverse consistent under random
    /// create / remove / remap / swap churn.
    #[test]
    fn tables_consistency_under_churn(ops in prop::collection::vec(
        (0u8..4, 0u64..64, 0u64..64), 1..200
    )) {
        let mut t = MappingTables::new(4);
        t.register_host(HostId(0));
        let mut next_au = 0u32;
        let mut live_aus: Vec<AuId> = Vec::new();
        let mut free_dsn = 0u64;
        for (kind, x, y) in ops {
            match kind {
                0 => {
                    // Create an AU over four fresh DSNs.
                    let au = AuId(next_au);
                    next_au += 1;
                    let dsns: Vec<Dsn> = (0..4).map(|i| Dsn(1000 + free_dsn + i)).collect();
                    free_dsn += 4;
                    t.create_au(HostId(0), au, dsns).unwrap();
                    live_aus.push(au);
                }
                1 => {
                    if let Some(au) = live_aus.pop() {
                        t.remove_au(HostId(0), au).unwrap();
                    }
                }
                2 => {
                    // Remap a random live HSN to a fresh DSN.
                    if let Some(au) = live_aus.first() {
                        let hsn = Hsn { host: HostId(0), au: *au, au_offset: (x % 4) as u32 };
                        let fresh = Dsn(1000 + free_dsn);
                        free_dsn += 1;
                        t.remap(hsn, fresh).unwrap();
                    }
                }
                _ => {
                    // Swap two arbitrary DSNs in the used range.
                    let a = Dsn(1000 + (x % free_dsn.max(1)));
                    let b = Dsn(1000 + (y % free_dsn.max(1)));
                    t.swap(a, b).unwrap();
                }
            }
            t.check_consistency().unwrap();
        }
    }
}
