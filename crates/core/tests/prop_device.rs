//! Property tests: the DTL device maintains its cross-structure invariants
//! (mapping consistency, allocator partitioning, no live data in MPSM)
//! under arbitrary interleavings of VM lifecycle events, accesses, and
//! time.

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, HostPhysAddr, VmHandle};
use dtl_dram::{AccessKind, Picos};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { aus: u8 },
    Dealloc { idx: u8 },
    Access { vm_idx: u8, offset: u32, write: bool },
    Tick { us: u16 },
    Retire { channel: u8, rank: u8 },
    Grow { idx: u8 },
    Shrink { idx: u8 },
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u8..3).prop_map(|aus| Op::Alloc { aus }),
        4 => any::<u8>().prop_map(|idx| Op::Dealloc { idx }),
        4 => (any::<u8>(), any::<u32>(), any::<bool>())
            .prop_map(|(vm_idx, offset, write)| Op::Access { vm_idx, offset, write }),
        4 => (1u16..500).prop_map(|us| Op::Tick { us }),
        1 => (0u8..2, 0u8..4).prop_map(|(channel, rank)| Op::Retire { channel, rank }),
        2 => any::<u8>().prop_map(|idx| Op::Grow { idx }),
        2 => any::<u8>().prop_map(|idx| Op::Shrink { idx }),
    ]
}

fn run_ops(ops: &[Op], hotness: bool, powerdown: bool) -> Result<(), TestCaseError> {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.set_hotness_enabled(hotness);
    dev.set_powerdown_enabled(powerdown);
    dev.register_host(HostId(0)).unwrap();
    let mut now = Picos::from_ns(1);
    let mut vms: Vec<(VmHandle, u64)> = Vec::new(); // (handle, bytes)
    for op in ops {
        now += Picos::from_ns(50);
        match op {
            Op::Alloc { aus } => {
                match dev.alloc_vm(HostId(0), u64::from(*aus) * cfg.au_bytes, now) {
                    Ok(a) => vms.push((a.handle, a.bytes)),
                    Err(DtlError::OutOfCapacity { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("alloc: {e}"))),
                }
            }
            Op::Dealloc { idx } => {
                if vms.is_empty() {
                    continue;
                }
                let (h, _) = vms.swap_remove(*idx as usize % vms.len());
                dev.dealloc_vm(h, now).map_err(|e| TestCaseError::fail(format!("dealloc: {e}")))?;
            }
            Op::Access { vm_idx, offset, write } => {
                if vms.is_empty() {
                    continue;
                }
                let (h, bytes) = vms[*vm_idx as usize % vms.len()];
                // Host address space: the VM's AU ids are not exposed here,
                // so probe via the device: any offset within the VM's first
                // AU region. AU ids are recycled; address the whole host
                // space and tolerate unmapped probes.
                let hpa = HostPhysAddr::new(u64::from(*offset) % bytes);
                let kind = if *write { AccessKind::Write } else { AccessKind::Read };
                match dev.access(HostId(0), hpa, kind, now) {
                    Ok(_) | Err(DtlError::UnmappedAddress { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("access: {e}"))),
                }
                let _ = h;
            }
            Op::Tick { us } => {
                now += Picos::from_us(u64::from(*us));
                dev.tick(now).map_err(|e| TestCaseError::fail(format!("tick: {e}")))?;
            }
            Op::Grow { idx } => {
                if vms.is_empty() {
                    continue;
                }
                let slot = *idx as usize % vms.len();
                match dev.grow_vm(vms[slot].0, cfg.au_bytes, now) {
                    Ok(_) => vms[slot].1 += cfg.au_bytes,
                    Err(DtlError::OutOfCapacity { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("grow: {e}"))),
                }
            }
            Op::Shrink { idx } => {
                if vms.is_empty() {
                    continue;
                }
                let slot = *idx as usize % vms.len();
                match dev.shrink_vm(vms[slot].0, 1, now) {
                    Ok(()) => vms[slot].1 -= cfg.au_bytes,
                    Err(DtlError::Internal { .. }) => {} // would empty the VM
                    Err(e) => return Err(TestCaseError::fail(format!("shrink: {e}"))),
                }
            }
            Op::Retire { channel, rank } => {
                // Retirement may legitimately fail (already retired, no
                // capacity); any other error is a bug.
                match dev.retire_rank(u32::from(*channel), u32::from(*rank), now) {
                    Ok(())
                    | Err(DtlError::OutOfCapacity { .. })
                    | Err(DtlError::Internal { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("retire: {e}"))),
                }
            }
        }
        dev.check_invariants()
            .map_err(|e| TestCaseError::fail(format!("invariant after {op:?}: {e}")))?;
    }
    // Drain: run migrations out and re-check.
    for _ in 0..50 {
        now += Picos::from_ms(1);
        dev.tick(now).map_err(|e| TestCaseError::fail(format!("drain tick: {e}")))?;
    }
    dev.check_invariants().map_err(|e| TestCaseError::fail(format!("final invariant: {e}")))?;
    // Deallocate everything; device must come back fully free.
    for (h, _) in vms {
        dev.dealloc_vm(h, now).map_err(|e| TestCaseError::fail(format!("final dealloc: {e}")))?;
    }
    for _ in 0..50 {
        now += Picos::from_ms(1);
        dev.tick(now).map_err(|e| TestCaseError::fail(format!("post tick: {e}")))?;
    }
    dev.check_invariants()
        .map_err(|e| TestCaseError::fail(format!("post-dealloc invariant: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_with_both_mechanisms(ops in prop::collection::vec(any_op(), 1..60)) {
        run_ops(&ops, true, true)?;
    }

    #[test]
    fn invariants_hold_powerdown_only(ops in prop::collection::vec(any_op(), 1..60)) {
        run_ops(&ops, false, true)?;
    }

    #[test]
    fn invariants_hold_hotness_only(ops in prop::collection::vec(any_op(), 1..60)) {
        run_ops(&ops, true, false)?;
    }
}
