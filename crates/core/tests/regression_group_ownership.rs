//! Regression test (found by the device property test): a power-down
//! victim that is reactivated for capacity and later drained again by a
//! *newer* plan (here: a retirement) must be finalized only by the owning
//! group — the older group completing its remaining jobs must not push the
//! rank into MPSM while the newer drain is still moving live data.

use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, HostId, VmHandle};
use dtl_dram::Picos;

#[test]
fn stale_drain_group_must_not_finalize_a_reassigned_rank() {
    let cfg = DtlConfig::tiny();
    let mut dev: DtlDevice<AnalyticBackend> = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.register_host(HostId(0)).unwrap();
    let mut now = Picos::from_ns(1);
    let mut vms: Vec<VmHandle> = Vec::new();
    let au = cfg.au_bytes;
    let step = |dev: &mut DtlDevice<AnalyticBackend>, now: &mut Picos| {
        *now += Picos::from_ns(50);
        dev.check_invariants().unwrap();
    };

    // The minimal sequence proptest shrank to: allocation churn creating
    // powered-down groups, a shrink that drains live data, a capacity wake
    // that reactivates one draining victim, then a retirement of the other
    // (still draining) victim while the old group's jobs finish.
    let a = dev.alloc_vm(HostId(0), au, now).unwrap();
    step(&mut dev, &mut now);
    dev.dealloc_vm(a.handle, now).unwrap();
    step(&mut dev, &mut now);
    vms.push(dev.alloc_vm(HostId(0), au, now).unwrap().handle);
    step(&mut dev, &mut now);
    let _ = dev.retire_rank(0, 0, now);
    step(&mut dev, &mut now);
    vms.push(dev.alloc_vm(HostId(0), au, now).unwrap().handle);
    step(&mut dev, &mut now);
    let h = vms.remove(0);
    dev.dealloc_vm(h, now).unwrap();
    step(&mut dev, &mut now);
    vms.push(dev.alloc_vm(HostId(0), 2 * au, now).unwrap().handle);
    step(&mut dev, &mut now);
    vms.push(dev.alloc_vm(HostId(0), 2 * au, now).unwrap().handle);
    step(&mut dev, &mut now);
    let slot = 199 % vms.len();
    let _ = dev.shrink_vm(vms[slot], 1, now);
    step(&mut dev, &mut now);
    now += Picos::from_us(98);
    dev.tick(now).unwrap();
    step(&mut dev, &mut now);
    if let Ok(v) = dev.alloc_vm(HostId(0), au, now) {
        vms.push(v.handle);
    }
    step(&mut dev, &mut now);
    for us in [310u64, 467] {
        now += Picos::from_us(us);
        dev.tick(now).unwrap();
        step(&mut dev, &mut now);
    }
    if let Ok(v) = dev.alloc_vm(HostId(0), au, now) {
        vms.push(v.handle);
    }
    step(&mut dev, &mut now);
    let _ = dev.retire_rank(1, 0, now);
    step(&mut dev, &mut now);
    for us in [245u64, 284, 420] {
        now += Picos::from_us(us);
        dev.tick(now).unwrap();
        step(&mut dev, &mut now);
    }
    // Drain everything out and verify the end state is consistent.
    for _ in 0..100 {
        now += Picos::from_ms(1);
        dev.tick(now).unwrap();
    }
    dev.check_invariants().unwrap();
}
