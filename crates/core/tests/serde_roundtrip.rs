//! Serde round-trip tests for the public data-model types (C-SERDE): the
//! experiment binaries dump these as JSON; they must survive the trip.

use dtl_core::{
    AuId, Dsn, DtlConfig, HostId, HostPhysAddr, Hsn, MigrationKind, SegmentGeometry,
    SegmentLocation, VmHandle,
};
use dtl_dram::{DramConfig, Picos, PowerState, RankEnergy};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn address_types_round_trip() {
    let hsn = Hsn { host: HostId(3), au: AuId(17), au_offset: 512 };
    assert_eq!(round_trip(&hsn), hsn);
    assert_eq!(round_trip(&Dsn(123456)), Dsn(123456));
    assert_eq!(round_trip(&HostPhysAddr::new(0xdead_b000)), HostPhysAddr::new(0xdead_b000));
    let loc = SegmentLocation { channel: 2, rank: 5, within: 4095 };
    assert_eq!(round_trip(&loc), loc);
    let vm = VmHandle { host: HostId(1), vm: 42 };
    assert_eq!(round_trip(&vm), vm);
}

#[test]
fn configs_round_trip() {
    let c = DtlConfig::paper();
    assert_eq!(round_trip(&c), c);
    let d = DramConfig::cxl_1tb_ddr4_2933();
    assert_eq!(round_trip(&d), d);
    let g = SegmentGeometry { channels: 4, ranks_per_channel: 8, segs_per_rank: 6144 };
    assert_eq!(round_trip(&g), g);
}

#[test]
fn time_and_power_round_trip() {
    assert_eq!(round_trip(&Picos::from_ns(121)), Picos::from_ns(121));
    assert_eq!(round_trip(&Picos::MAX), Picos::MAX);
    for s in PowerState::ALL {
        assert_eq!(round_trip(&s), s);
    }
    let e = RankEnergy {
        background_mj: 1.5,
        activate_mj: 0.25,
        read_mj: 0.5,
        write_mj: 0.125,
        refresh_mj: 0.0,
    };
    assert_eq!(round_trip(&e), e);
}

#[test]
fn migration_kinds_round_trip() {
    for k in [
        MigrationKind::Copy { src: Dsn(1), dst: Dsn(2) },
        MigrationKind::Swap { a: Dsn(3), b: Dsn(4) },
    ] {
        assert_eq!(round_trip(&k), k);
    }
}
