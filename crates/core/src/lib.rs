//! # dtl-core — the DRAM Translation Layer
//!
//! A from-scratch reproduction of the primary contribution of *"DRAM
//! Translation Layer: Software-Transparent DRAM Power Savings for
//! Disaggregated Memory"* (ISCA 2023): an FTL-like indirection layer inside
//! a CXL memory controller that translates host physical addresses to DRAM
//! device physical addresses at 2 MiB segment granularity and migrates
//! segments transparently, enabling
//!
//! * **rank-level power-down** ([`PowerDownEngine`]) — consolidate
//!   unallocated capacity at VM deallocation and put whole (virtual) rank
//!   groups into maximum power saving mode, and
//! * **hotness-aware self-refresh** ([`HotnessEngine`]) — CLOCK-style
//!   hot/cold segment separation that parks a cold victim rank per channel
//!   in self-refresh.
//!
//! The [`DtlDevice`] façade drives both over a pluggable
//! [`MemoryBackend`]: cycle-accurate ([`CycleBackend`]) or fast analytic
//! ([`AnalyticBackend`]).
//!
//! ```
//! use dtl_core::{DtlConfig, DtlDevice, HostId};
//! use dtl_dram::{AccessKind, Picos};
//!
//! let cfg = DtlConfig::tiny();
//! let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
//! dev.register_host(HostId(0))?;
//! let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
//! let out = dev.access(HostId(0), vm.hpa_base(0, cfg.au_bytes), AccessKind::Read, Picos::from_us(1))?;
//! assert!(out.translation_latency > Picos::ZERO);
//! dev.dealloc_vm(vm.handle, Picos::from_us(2))?;
//! dev.check_invariants()?;
//! # Ok::<(), dtl_core::DtlError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod alloc;
mod backend;
mod config;
mod device;
mod error;
mod health;
mod hotness;
mod migrate;
mod overhead;
mod powerdown;
mod smc;
mod tables;
mod tap;
mod translate;

pub use addr::{AuId, Dsn, HostId, HostPhysAddr, Hsn, SegmentGeometry, SegmentLocation, VmHandle};
pub use alloc::SegmentAllocator;
pub use backend::{AnalyticBackend, CycleBackend, MemoryBackend};
pub use config::DtlConfig;
pub use device::{
    AccessOutcome, DeviceSnapshot, DeviceStats, DtlDevice, HostSnapshot, HotnessRole, RankSnapshot,
    UncorrectableReport, VmAllocation,
};
pub use error::DtlError;
pub use health::{HealthParams, HealthStats, HealthTracker, RankErrorRecord, RankHealth};
pub use hotness::{HotnessEngine, HotnessParams, HotnessPhase, HotnessPlan, HotnessStats};
pub use migrate::{
    CompletedMigration, MigrationEngine, MigrationInterrupt, MigrationJob, MigrationKind,
    MigrationStats, WriteRouting,
};
pub use overhead::{ControllerCost, OverheadConfig, StructureSizes};
pub use powerdown::{PowerDownEngine, PowerDownPlan, PowerDownStats, RankPdState};
pub use smc::{SegmentMappingCache, SmcOutcome, SmcStats};
pub use tables::MappingTables;
pub use tap::{CommandTap, DeviceCommand};
pub use translate::{Translation, TranslationLatency, Translator};
