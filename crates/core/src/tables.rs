//! The DTL's mapping metadata (paper §3.2, §4.2): host base address table,
//! per-host AU tables, the segment mapping table (HSN→DSN) and the reverse
//! mapping table (DSN→HSN).
//!
//! In hardware the first two levels live in on-chip SRAM and the segment
//! mapping table in reserved DRAM; the functional simulator keeps them all
//! in memory and the latency model charges the appropriate access costs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::{AuId, Dsn, HostId, Hsn};
use crate::error::DtlError;

/// One allocation unit's segment mapping: AU offset → DSN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct AuTable {
    map: Vec<Dsn>,
}

/// All mapping state of the device.
///
/// # Examples
///
/// ```
/// use dtl_core::{AuId, Dsn, HostId, Hsn, MappingTables};
///
/// let mut t = MappingTables::new(4);
/// t.register_host(HostId(0));
/// t.create_au(HostId(0), AuId(0), vec![Dsn(0), Dsn(1), Dsn(2), Dsn(3)])?;
/// let hsn = Hsn { host: HostId(0), au: AuId(0), au_offset: 2 };
/// assert_eq!(t.translate(hsn), Some(Dsn(2)));
/// assert_eq!(t.reverse(Dsn(2)), Some(hsn));
/// # Ok::<(), dtl_core::DtlError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MappingTables {
    segments_per_au: u64,
    hosts: HashMap<HostId, HashMap<AuId, AuTable>>,
    reverse: HashMap<Dsn, Hsn>,
}

impl MappingTables {
    /// Builds empty tables for AUs of `segments_per_au` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments_per_au` is zero.
    pub fn new(segments_per_au: u64) -> Self {
        assert!(segments_per_au > 0, "an AU must hold at least one segment");
        MappingTables { segments_per_au, hosts: HashMap::new(), reverse: HashMap::new() }
    }

    /// Registers a host (idempotent).
    pub fn register_host(&mut self, host: HostId) {
        self.hosts.entry(host).or_default();
    }

    /// Whether a host is registered.
    pub fn has_host(&self, host: HostId) -> bool {
        self.hosts.contains_key(&host)
    }

    /// Number of AUs currently mapped for `host` (0 if unknown).
    pub fn au_count(&self, host: HostId) -> usize {
        self.hosts.get(&host).map_or(0, HashMap::len)
    }

    /// Installs a new AU for `host` backed by exactly `segments_per_au`
    /// DSNs.
    ///
    /// # Errors
    ///
    /// * [`DtlError::UnknownHost`] if the host is unregistered;
    /// * [`DtlError::Internal`] if the DSN count is wrong, the AU already
    ///   exists, or a DSN is already mapped.
    pub fn create_au(&mut self, host: HostId, au: AuId, dsns: Vec<Dsn>) -> Result<(), DtlError> {
        if dsns.len() as u64 != self.segments_per_au {
            return Err(DtlError::Internal {
                reason: format!("AU needs {} segments, got {}", self.segments_per_au, dsns.len()),
            });
        }
        for (off, d) in dsns.iter().enumerate() {
            if self.reverse.contains_key(d) {
                return Err(DtlError::Internal {
                    reason: format!("DSN {d} already mapped (offset {off})"),
                });
            }
        }
        let aus = self.hosts.get_mut(&host).ok_or(DtlError::UnknownHost(host))?;
        if aus.contains_key(&au) {
            return Err(DtlError::Internal { reason: format!("{host} already has {au}") });
        }
        for (off, d) in dsns.iter().enumerate() {
            self.reverse.insert(*d, Hsn { host, au, au_offset: off as u32 });
        }
        self.hosts.get_mut(&host).expect("checked above").insert(au, AuTable { map: dsns });
        Ok(())
    }

    /// Removes an AU, returning the DSNs it occupied.
    ///
    /// # Errors
    ///
    /// [`DtlError::UnknownHost`] / [`DtlError::UnknownAu`] when absent.
    pub fn remove_au(&mut self, host: HostId, au: AuId) -> Result<Vec<Dsn>, DtlError> {
        let aus = self.hosts.get_mut(&host).ok_or(DtlError::UnknownHost(host))?;
        let table = aus.remove(&au).ok_or(DtlError::UnknownAu { host, au })?;
        for d in &table.map {
            self.reverse.remove(d);
        }
        Ok(table.map)
    }

    /// The full three-level walk: HSN → DSN.
    pub fn translate(&self, hsn: Hsn) -> Option<Dsn> {
        self.hosts.get(&hsn.host)?.get(&hsn.au)?.map.get(hsn.au_offset as usize).copied()
    }

    /// The reverse walk: DSN → HSN (None for unallocated segments).
    pub fn reverse(&self, dsn: Dsn) -> Option<Hsn> {
        self.reverse.get(&dsn).copied()
    }

    /// Points `hsn` at a new DSN (after migration). Returns the old DSN.
    ///
    /// # Errors
    ///
    /// * [`DtlError::UnknownHost`] / [`DtlError::UnknownAu`] /
    ///   [`DtlError::Internal`] when the HSN is not currently mapped or the
    ///   destination is occupied by another HSN.
    pub fn remap(&mut self, hsn: Hsn, new_dsn: Dsn) -> Result<Dsn, DtlError> {
        if let Some(owner) = self.reverse.get(&new_dsn) {
            if *owner != hsn {
                return Err(DtlError::Internal {
                    reason: format!("remap target {new_dsn} already owned by {owner}"),
                });
            }
        }
        let aus = self.hosts.get_mut(&hsn.host).ok_or(DtlError::UnknownHost(hsn.host))?;
        let table =
            aus.get_mut(&hsn.au).ok_or(DtlError::UnknownAu { host: hsn.host, au: hsn.au })?;
        let slot = table.map.get_mut(hsn.au_offset as usize).ok_or(DtlError::Internal {
            reason: format!("AU offset {} out of range", hsn.au_offset),
        })?;
        let old = *slot;
        *slot = new_dsn;
        self.reverse.remove(&old);
        self.reverse.insert(new_dsn, hsn);
        Ok(old)
    }

    /// Swaps the contents of two device segments in the mapping: whatever
    /// HSNs pointed at `a` and `b` now point at the other. Either side may
    /// be unallocated. Returns the HSNs that were affected.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] if a mapped HSN's forward entry is
    /// inconsistent with the reverse table (indicates a bug).
    pub fn swap(&mut self, a: Dsn, b: Dsn) -> Result<(Option<Hsn>, Option<Hsn>), DtlError> {
        if a == b {
            let owner = self.reverse(a);
            return Ok((owner, owner));
        }
        let ha = self.reverse(a);
        let hb = self.reverse(b);
        if let Some(h) = ha {
            self.point(h, b)?;
        }
        if let Some(h) = hb {
            self.point(h, a)?;
        }
        // Rebuild the reverse entries explicitly (point() fixed forward).
        self.reverse.remove(&a);
        self.reverse.remove(&b);
        if let Some(h) = ha {
            self.reverse.insert(b, h);
        }
        if let Some(h) = hb {
            self.reverse.insert(a, h);
        }
        Ok((ha, hb))
    }

    /// Updates only the forward table (internal helper for `swap`).
    fn point(&mut self, hsn: Hsn, dsn: Dsn) -> Result<(), DtlError> {
        let table = self
            .hosts
            .get_mut(&hsn.host)
            .and_then(|aus| aus.get_mut(&hsn.au))
            .ok_or(DtlError::Internal { reason: format!("dangling reverse entry {hsn}") })?;
        let slot = table.map.get_mut(hsn.au_offset as usize).ok_or(DtlError::Internal {
            reason: format!("AU offset {} out of range", hsn.au_offset),
        })?;
        *slot = dsn;
        Ok(())
    }

    /// Deliberately points the lowest-DSN mapped entry's forward slot at a
    /// different DSN **without updating the reverse table** — the exact
    /// shape of a missed-invalidation mapping bug. A mutation hook for
    /// checker self-tests; never called by production code. Returns the
    /// corrupted HSN, or `None` when nothing is mapped.
    #[doc(hidden)]
    pub fn corrupt_first_forward_slot(&mut self) -> Option<Hsn> {
        let (dsn, hsn) = self.reverse.iter().min_by_key(|(d, _)| d.0).map(|(d, h)| (*d, *h))?;
        self.point(hsn, Dsn(dsn.0 ^ 1)).ok()?;
        Some(hsn)
    }

    /// Iterates over all mapped (DSN, HSN) pairs (unordered).
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Dsn, Hsn)> + '_ {
        self.reverse.iter().map(|(d, h)| (*d, *h))
    }

    /// Number of mapped segments.
    pub fn mapped_segments(&self) -> u64 {
        self.reverse.len() as u64
    }

    /// Verifies forward/reverse consistency; returns the number of mapped
    /// segments.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] describing the first inconsistency found.
    pub fn check_consistency(&self) -> Result<u64, DtlError> {
        for (dsn, hsn) in &self.reverse {
            match self.translate(*hsn) {
                Some(d) if d == *dsn => {}
                other => {
                    return Err(DtlError::Internal {
                        reason: format!("reverse {dsn}->{hsn} but forward says {other:?}"),
                    })
                }
            }
        }
        let mut forward_count = 0u64;
        for aus in self.hosts.values() {
            for table in aus.values() {
                forward_count += table.map.len() as u64;
            }
        }
        if forward_count != self.reverse.len() as u64 {
            return Err(DtlError::Internal {
                reason: format!(
                    "forward maps {forward_count} segments, reverse {}",
                    self.reverse.len()
                ),
            });
        }
        Ok(forward_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> MappingTables {
        let mut t = MappingTables::new(4);
        t.register_host(HostId(0));
        t.register_host(HostId(1));
        t.create_au(HostId(0), AuId(0), vec![Dsn(0), Dsn(1), Dsn(2), Dsn(3)]).unwrap();
        t.create_au(HostId(1), AuId(0), vec![Dsn(10), Dsn(11), Dsn(12), Dsn(13)]).unwrap();
        t
    }

    fn hsn(host: u16, au: u32, off: u32) -> Hsn {
        Hsn { host: HostId(host), au: AuId(au), au_offset: off }
    }

    #[test]
    fn translate_and_reverse_agree() {
        let t = tables();
        assert_eq!(t.translate(hsn(0, 0, 2)), Some(Dsn(2)));
        assert_eq!(t.reverse(Dsn(2)), Some(hsn(0, 0, 2)));
        assert_eq!(t.translate(hsn(0, 1, 0)), None);
        assert_eq!(t.reverse(Dsn(99)), None);
        t.check_consistency().unwrap();
        assert_eq!(t.mapped_segments(), 8);
    }

    #[test]
    fn create_au_validations() {
        let mut t = tables();
        // Wrong segment count.
        assert!(t.create_au(HostId(0), AuId(1), vec![Dsn(20)]).is_err());
        // Duplicate AU.
        assert!(t.create_au(HostId(0), AuId(0), vec![Dsn(20), Dsn(21), Dsn(22), Dsn(23)]).is_err());
        // DSN already mapped.
        assert!(t.create_au(HostId(0), AuId(1), vec![Dsn(10), Dsn(21), Dsn(22), Dsn(23)]).is_err());
        // Unknown host.
        assert!(t.create_au(HostId(9), AuId(0), vec![Dsn(20), Dsn(21), Dsn(22), Dsn(23)]).is_err());
    }

    #[test]
    fn remove_au_returns_segments() {
        let mut t = tables();
        let dsns = t.remove_au(HostId(0), AuId(0)).unwrap();
        assert_eq!(dsns, vec![Dsn(0), Dsn(1), Dsn(2), Dsn(3)]);
        assert_eq!(t.translate(hsn(0, 0, 0)), None);
        assert_eq!(t.reverse(Dsn(0)), None);
        assert!(t.remove_au(HostId(0), AuId(0)).is_err(), "double remove");
        t.check_consistency().unwrap();
    }

    #[test]
    fn remap_moves_a_segment() {
        let mut t = tables();
        let old = t.remap(hsn(0, 0, 1), Dsn(50)).unwrap();
        assert_eq!(old, Dsn(1));
        assert_eq!(t.translate(hsn(0, 0, 1)), Some(Dsn(50)));
        assert_eq!(t.reverse(Dsn(50)), Some(hsn(0, 0, 1)));
        assert_eq!(t.reverse(Dsn(1)), None);
        t.check_consistency().unwrap();
    }

    #[test]
    fn remap_to_occupied_target_rejected() {
        let mut t = tables();
        assert!(t.remap(hsn(0, 0, 1), Dsn(10)).is_err(), "owned by host 1");
    }

    #[test]
    fn swap_two_live_segments() {
        let mut t = tables();
        let (a, b) = t.swap(Dsn(0), Dsn(10)).unwrap();
        assert_eq!(a, Some(hsn(0, 0, 0)));
        assert_eq!(b, Some(hsn(1, 0, 0)));
        assert_eq!(t.translate(hsn(0, 0, 0)), Some(Dsn(10)));
        assert_eq!(t.translate(hsn(1, 0, 0)), Some(Dsn(0)));
        t.check_consistency().unwrap();
    }

    #[test]
    fn swap_live_with_free() {
        let mut t = tables();
        let (a, b) = t.swap(Dsn(0), Dsn(77)).unwrap();
        assert_eq!(a, Some(hsn(0, 0, 0)));
        assert_eq!(b, None);
        assert_eq!(t.translate(hsn(0, 0, 0)), Some(Dsn(77)));
        assert_eq!(t.reverse(Dsn(0)), None);
        t.check_consistency().unwrap();
    }

    #[test]
    fn swap_with_self_is_identity() {
        let mut t = tables();
        t.swap(Dsn(0), Dsn(0)).unwrap();
        assert_eq!(t.translate(hsn(0, 0, 0)), Some(Dsn(0)));
        t.check_consistency().unwrap();
    }

    #[test]
    fn swap_two_free_segments_is_noop() {
        let mut t = tables();
        let (a, b) = t.swap(Dsn(70), Dsn(71)).unwrap();
        assert_eq!((a, b), (None, None));
        t.check_consistency().unwrap();
    }
}
