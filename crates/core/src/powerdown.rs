//! Rank-level power-down (paper §3.3): at VM deallocation, when the active
//! ranks hold at least one rank-group's worth of free capacity, drain the
//! least-allocated rank of every channel into the remaining active ranks
//! and put the (virtual) rank group into maximum power saving mode.
//!
//! Because hotness migration can leave different rank indices idle in
//! different channels, the group is *virtual* (§4.3): one rank per channel,
//! indices independent.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::{Dsn, SegmentGeometry, SegmentLocation};
use crate::alloc::SegmentAllocator;
use crate::error::DtlError;

/// Power-down lifecycle of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankPdState {
    /// Serving traffic and allocations.
    Active,
    /// Selected as a victim; live segments are migrating out.
    Draining,
    /// In maximum power saving mode.
    PoweredDown,
    /// Permanently taken out of service (reliability retirement); never
    /// woken for capacity.
    Retired,
}

/// A planned power-down: the victim rank per channel and the copy jobs that
/// drain them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerDownPlan {
    /// One `(channel, rank)` victim per channel — a virtual rank group.
    pub group: Vec<(u32, u32)>,
    /// `(src, dst)` segment copies needed to drain the group.
    pub copies: Vec<(Dsn, Dsn)>,
}

/// Counters of the engine's activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerDownStats {
    /// Rank groups that completed power-down.
    pub groups_powered_down: u64,
    /// Rank groups woken for capacity.
    pub groups_woken: u64,
    /// Segments drained out of victim ranks.
    pub segments_drained: u64,
    /// Ranks permanently retired (reliability extension).
    pub ranks_retired: u64,
}

#[derive(Debug, Clone)]
struct DrainGroup {
    ranks: Vec<(u32, u32)>,
    pending_jobs: u64,
    /// Per-rank terminal state: `Retired` instead of `PoweredDown`.
    retire: Vec<bool>,
}

/// The rank-level power-down engine.
///
/// # Examples
///
/// ```
/// use dtl_core::{PowerDownEngine, RankPdState, SegmentAllocator, SegmentGeometry};
///
/// let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 };
/// let mut alloc = SegmentAllocator::new(geo);
/// let mut pd = PowerDownEngine::new(geo);
/// // An empty device can power a rank group down with zero copies.
/// let plan = pd.plan_power_down(&mut alloc).expect("all free");
/// assert!(plan.copies.is_empty());
/// let ranks = pd.register_drain_jobs(&plan, &[]);
/// assert_eq!(ranks.len(), 2); // one rank per channel
/// assert_eq!(pd.rank_state(ranks[0].0, ranks[0].1), RankPdState::PoweredDown);
/// ```
#[derive(Debug)]
pub struct PowerDownEngine {
    geo: SegmentGeometry,
    state: Vec<Vec<RankPdState>>,
    draining: Vec<DrainGroup>,
    /// job id -> index into `draining`.
    job_to_group: HashMap<u64, usize>,
    /// Which group currently owns a Draining rank. A rank can be
    /// reactivated for capacity and later drained again by a *newer* plan;
    /// only the owning group may finalize it.
    rank_owner: HashMap<(u32, u32), usize>,
    stats: PowerDownStats,
}

impl PowerDownEngine {
    /// A fresh engine with every rank active.
    pub fn new(geo: SegmentGeometry) -> Self {
        PowerDownEngine {
            geo,
            state: (0..geo.channels)
                .map(|_| vec![RankPdState::Active; geo.ranks_per_channel as usize])
                .collect(),
            draining: Vec::new(),
            job_to_group: HashMap::new(),
            rank_owner: HashMap::new(),
            stats: PowerDownStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PowerDownStats {
        self.stats
    }

    /// Lifecycle state of a rank.
    pub fn rank_state(&self, channel: u32, rank: u32) -> RankPdState {
        self.state[channel as usize][rank as usize]
    }

    /// Ranks of a channel currently active (serving allocations).
    pub fn active_ranks(&self, channel: u32) -> u32 {
        self.state[channel as usize].iter().filter(|s| **s == RankPdState::Active).count() as u32
    }

    /// Ranks in MPSM per channel (for power accounting).
    pub fn powered_down_ranks(&self, channel: u32) -> u32 {
        self.state[channel as usize].iter().filter(|s| **s == RankPdState::PoweredDown).count()
            as u32
    }

    /// Attempts to plan a rank-group power-down (call at VM deallocation).
    ///
    /// A plan exists when every channel keeps at least two active ranks and
    /// the active ranks of every channel hold at least one rank of free
    /// capacity. On success, the victims are marked `Draining`, removed
    /// from the allocator's active set, and destination slots are reserved.
    ///
    /// Returns `None` when the condition does not hold (nothing mutated).
    pub fn plan_power_down(&mut self, alloc: &mut SegmentAllocator) -> Option<PowerDownPlan> {
        self.plan_power_down_excluding(alloc, |_, _| false)
    }

    /// Like [`PowerDownEngine::plan_power_down`], but never selects a rank
    /// for which `excluded(channel, rank)` is true — the device excludes
    /// ranks that in-flight migrations are still writing into.
    pub fn plan_power_down_excluding<F>(
        &mut self,
        alloc: &mut SegmentAllocator,
        excluded: F,
    ) -> Option<PowerDownPlan>
    where
        F: Fn(u32, u32) -> bool,
    {
        // Feasibility across all channels first.
        let mut victims = Vec::with_capacity(self.geo.channels as usize);
        for c in 0..self.geo.channels {
            if self.active_ranks(c) < 2 {
                return None;
            }
            if alloc.free_in_channel_active(c) < self.geo.segs_per_rank {
                return None;
            }
            let skip: Vec<u32> =
                (0..self.geo.ranks_per_channel).filter(|r| excluded(c, *r)).collect();
            let victim = alloc.least_allocated_active_rank(c, &skip)?;
            // The other active ranks must absorb the victim's live data.
            let spare = alloc.free_in_channel_active(c) - alloc.free_in_rank(c, victim);
            if spare < alloc.allocated_in_rank(c, victim) {
                return None;
            }
            victims.push((c, victim));
        }
        // Commit: reserve destinations and mark the victims draining.
        let mut copies = Vec::new();
        for &(c, victim) in &victims {
            self.state[c as usize][victim as usize] = RankPdState::Draining;
            alloc.set_rank_active(c, victim, false);
            let live: Vec<u64> = alloc.allocated_slots(c, victim).collect();
            for within in live {
                let src = self.geo.dsn(SegmentLocation { channel: c, rank: victim, within });
                let dst_loc =
                    self.pick_destination(alloc, c).expect("spare capacity verified above");
                copies.push((src, self.geo.dsn(dst_loc)));
            }
        }
        self.stats.segments_drained += copies.len() as u64;
        Some(PowerDownPlan { group: victims, copies })
    }

    /// Re-keys a drain job after the device re-aimed it at a new
    /// destination (rank retirement cancels jobs into the retiring rank).
    /// Returns whether the old id was tracked.
    pub fn replace_job(&mut self, old_id: u64, new_id: u64) -> bool {
        if let Some(idx) = self.job_to_group.remove(&old_id) {
            self.job_to_group.insert(new_id, idx);
            true
        } else {
            false
        }
    }

    /// Picks a drain destination in channel `c`: the most utilized active
    /// rank with free space (the allocator's packing preference).
    fn pick_destination(&self, alloc: &mut SegmentAllocator, c: u32) -> Option<SegmentLocation> {
        let rank = (0..self.geo.ranks_per_channel)
            .filter(|r| {
                self.state[c as usize][*r as usize] == RankPdState::Active
                    && alloc.free_in_rank(c, *r) > 0
            })
            .max_by_key(|r| (alloc.allocated_in_rank(c, *r), u32::MAX - *r))?;
        alloc.take_free_in_rank(c, rank)
    }

    /// Registers the migration job ids that drain `plan`'s group. Returns
    /// the ranks that can power down immediately (when there is nothing to
    /// drain).
    pub fn register_drain_jobs(
        &mut self,
        plan: &PowerDownPlan,
        job_ids: &[u64],
    ) -> Vec<(u32, u32)> {
        self.register_jobs_inner(plan, job_ids, false)
    }

    fn register_jobs_inner(
        &mut self,
        plan: &PowerDownPlan,
        job_ids: &[u64],
        retire: bool,
    ) -> Vec<(u32, u32)> {
        let terminal = if retire { RankPdState::Retired } else { RankPdState::PoweredDown };
        if job_ids.is_empty() {
            for &(c, r) in &plan.group {
                self.state[c as usize][r as usize] = terminal;
            }
            if retire {
                self.stats.ranks_retired += plan.group.len() as u64;
            } else {
                self.stats.groups_powered_down += 1;
            }
            return plan.group.clone();
        }
        let idx = self.draining.len();
        self.draining.push(DrainGroup {
            ranks: plan.group.clone(),
            pending_jobs: job_ids.len() as u64,
            retire: vec![retire; plan.group.len()],
        });
        for &(c, r) in &plan.group {
            self.rank_owner.insert((c, r), idx);
        }
        for id in job_ids {
            self.job_to_group.insert(*id, idx);
        }
        Vec::new()
    }

    /// Converts an in-progress drain of `(channel, rank)` into a
    /// retirement: when its group finishes draining, this rank lands in
    /// [`RankPdState::Retired`] instead of [`RankPdState::PoweredDown`].
    /// Returns whether the rank was found draining.
    pub fn convert_drain_to_retirement(&mut self, channel: u32, rank: u32) -> bool {
        let Some(&idx) = self.rank_owner.get(&(channel, rank)) else {
            return false;
        };
        let group = &mut self.draining[idx];
        for (i, (c, r)) in group.ranks.iter().enumerate() {
            if *c == channel && *r == rank {
                group.retire[i] = true;
                return self.state[channel as usize][rank as usize] == RankPdState::Draining;
            }
        }
        false
    }

    /// Plans the permanent retirement of one rank (the reliability
    /// extension of the paper's §9: a rank showing correctable-error storms
    /// can be vacated online, transparently to every host). The rank's
    /// live segments are drained exactly like a power-down victim's; the
    /// terminal state is [`RankPdState::Retired`] and the rank is never
    /// woken for capacity again.
    ///
    /// An already powered-down rank retires immediately (it holds no data).
    ///
    /// # Errors
    ///
    /// * [`DtlError::OutOfCapacity`] when the channel's other active ranks
    ///   cannot absorb the rank's live segments (wake a group and retry);
    /// * [`DtlError::Internal`] when the rank is already retiring/retired
    ///   or is the channel's last active rank.
    pub fn plan_retirement(
        &mut self,
        alloc: &mut SegmentAllocator,
        channel: u32,
        rank: u32,
    ) -> Result<PowerDownPlan, DtlError> {
        let state = self.state[channel as usize][rank as usize];
        match state {
            RankPdState::Retired | RankPdState::Draining => {
                return Err(DtlError::Internal {
                    reason: format!("rank ch{channel}/rk{rank} is already {state:?}"),
                });
            }
            RankPdState::PoweredDown => {
                // Nothing stored there; flip the state.
                self.state[channel as usize][rank as usize] = RankPdState::Retired;
                self.stats.ranks_retired += 1;
                return Ok(PowerDownPlan { group: vec![(channel, rank)], copies: Vec::new() });
            }
            RankPdState::Active => {}
        }
        if self.active_ranks(channel) < 2 {
            // The caller may wake a powered-down group and retry; with
            // nothing to wake, the retirement is genuinely impossible.
            return Err(DtlError::OutOfCapacity {
                requested: alloc.allocated_in_rank(channel, rank),
                free: 0,
            });
        }
        let live = alloc.allocated_in_rank(channel, rank);
        let spare = alloc.free_in_channel_active(channel) - alloc.free_in_rank(channel, rank);
        if spare < live {
            return Err(DtlError::OutOfCapacity { requested: live, free: spare });
        }
        self.state[channel as usize][rank as usize] = RankPdState::Draining;
        alloc.set_rank_active(channel, rank, false);
        let mut copies = Vec::new();
        let slots: Vec<u64> = alloc.allocated_slots(channel, rank).collect();
        for within in slots {
            let src = self.geo.dsn(SegmentLocation { channel, rank, within });
            let dst = self.pick_destination(alloc, channel).expect("spare capacity verified above");
            copies.push((src, self.geo.dsn(dst)));
        }
        self.stats.segments_drained += copies.len() as u64;
        Ok(PowerDownPlan { group: vec![(channel, rank)], copies })
    }

    /// Registers the drain jobs of a retirement plan; returns the rank if
    /// it can power off immediately.
    pub fn register_retirement_jobs(
        &mut self,
        plan: &PowerDownPlan,
        job_ids: &[u64],
    ) -> Vec<(u32, u32)> {
        self.register_jobs_inner(plan, job_ids, true)
    }

    /// Notifies that a drain migration finished. Returns ranks to put into
    /// MPSM when their whole group has drained.
    pub fn on_migration_complete(&mut self, job_id: u64) -> Vec<(u32, u32)> {
        let Some(idx) = self.job_to_group.remove(&job_id) else {
            return Vec::new();
        };
        let group = &mut self.draining[idx];
        group.pending_jobs = group.pending_jobs.saturating_sub(1);
        if group.pending_jobs > 0 {
            return Vec::new();
        }
        let ranks = group.ranks.clone();
        let retire = group.retire.clone();
        let group_idx = idx;
        let mut out = Vec::new();
        let mut any_powerdown = false;
        for (i, (c, r)) in ranks.into_iter().enumerate() {
            // The rank may have been reactivated for capacity (and possibly
            // re-drained by a newer plan): only the owning group finalizes.
            let owned = self.rank_owner.get(&(c, r)) == Some(&group_idx);
            if owned && self.state[c as usize][r as usize] == RankPdState::Draining {
                if retire[i] {
                    self.state[c as usize][r as usize] = RankPdState::Retired;
                    self.stats.ranks_retired += 1;
                } else {
                    self.state[c as usize][r as usize] = RankPdState::PoweredDown;
                    any_powerdown = true;
                }
                self.rank_owner.remove(&(c, r));
                out.push((c, r));
            }
        }
        if any_powerdown {
            self.stats.groups_powered_down += 1;
        }
        out
    }

    /// Wakes one rank per channel to regain capacity (call when allocation
    /// fails). Prefers `PoweredDown` ranks; falls back to reactivating
    /// `Draining` victims. Returns the ranks that need an MPSM exit
    /// (powered-down ones) — reactivated draining ranks need no DRAM
    /// command.
    ///
    /// # Errors
    ///
    /// [`DtlError::OutOfCapacity`] if no channel has a rank to wake.
    pub fn wake_one_group(
        &mut self,
        alloc: &mut SegmentAllocator,
    ) -> Result<Vec<(u32, u32)>, DtlError> {
        let mut mpsm_exits = Vec::new();
        let mut woke_any = false;
        for c in 0..self.geo.channels {
            let states = &mut self.state[c as usize];
            if let Some(r) = states.iter().position(|s| *s == RankPdState::PoweredDown) {
                states[r] = RankPdState::Active;
                alloc.set_rank_active(c, r as u32, true);
                mpsm_exits.push((c, r as u32));
                woke_any = true;
            } else {
                // Reactivate a draining power-down victim — but never a
                // retiring rank (it is leaving service for good).
                let retiring: Vec<u32> = self
                    .draining
                    .iter()
                    .filter(|g| g.pending_jobs > 0)
                    .flat_map(|g| {
                        g.ranks
                            .iter()
                            .zip(g.retire.iter())
                            .filter(|(_, retire)| **retire)
                            .map(|((gc, gr), _)| (*gc, *gr))
                            .collect::<Vec<_>>()
                    })
                    .filter(|(gc, _)| *gc == c)
                    .map(|(_, r)| r)
                    .collect();
                if let Some(r) = states.iter().enumerate().position(|(i, s)| {
                    *s == RankPdState::Draining && !retiring.contains(&(i as u32))
                }) {
                    states[r] = RankPdState::Active;
                    alloc.set_rank_active(c, r as u32, true);
                    self.rank_owner.remove(&(c, r as u32));
                    woke_any = true;
                }
            }
        }
        if !woke_any {
            return Err(DtlError::OutOfCapacity { requested: 0, free: alloc.free_active_total() });
        }
        self.stats.groups_woken += 1;
        Ok(mpsm_exits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> SegmentGeometry {
        SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 }
    }

    fn setup() -> (PowerDownEngine, SegmentAllocator) {
        (PowerDownEngine::new(geo()), SegmentAllocator::new(geo()))
    }

    #[test]
    fn empty_device_plans_trivial_power_down() {
        let (mut pd, mut alloc) = setup();
        let plan = pd.plan_power_down(&mut alloc).expect("all free: must plan");
        assert_eq!(plan.group.len(), 2, "one victim per channel");
        assert!(plan.copies.is_empty(), "nothing to drain");
        let ranks = pd.register_drain_jobs(&plan, &[]);
        assert_eq!(ranks, plan.group);
        for (c, r) in ranks {
            assert_eq!(pd.rank_state(c, r), RankPdState::PoweredDown);
            assert!(!alloc.is_rank_active(c, r));
        }
        assert_eq!(pd.stats().groups_powered_down, 1);
    }

    #[test]
    fn victim_with_live_data_produces_copies() {
        let (mut pd, mut alloc) = setup();
        // Five AUs: the first four fill one rank per channel (16 segments),
        // the fifth spills into a second rank. Deallocating three of the
        // packed AUs leaves two partially-loaded active ranks after the two
        // empty ranks power down — forcing a victim with live data.
        let aus: Vec<Vec<Dsn>> = (0..5).map(|_| alloc.allocate_au(8).unwrap()).collect();
        for au in &aus[1..4] {
            alloc.free_segments(au).unwrap();
        }
        for _ in 0..2 {
            let plan = pd.plan_power_down(&mut alloc).unwrap();
            assert!(plan.copies.is_empty(), "empty ranks drain for free");
            pd.register_drain_jobs(&plan, &[]);
        }
        // Two active ranks per channel, 4 live segments each; the plan must
        // drain one of them: 4 segments per channel = 8 copies.
        let plan = pd.plan_power_down(&mut alloc).unwrap();
        assert_eq!(plan.copies.len(), 8, "all live segments must move");
        for (c, r) in &plan.group {
            assert_eq!(pd.rank_state(*c, *r), RankPdState::Draining);
        }
        // Copies must leave the victim and land in the surviving rank.
        let g = geo();
        for (src, dst) in &plan.copies {
            let (s, d) = (g.location(*src), g.location(*dst));
            assert_eq!(s.channel, d.channel, "drain stays in its channel");
            assert!(plan.group.contains(&(s.channel, s.rank)));
            assert!(!plan.group.contains(&(d.channel, d.rank)));
        }
        // Complete via migration notifications.
        let job_ids: Vec<u64> = (100..108).collect();
        assert!(pd.register_drain_jobs(&plan, &job_ids).is_empty());
        let mut downed = Vec::new();
        for id in job_ids {
            downed.extend(pd.on_migration_complete(id));
        }
        assert_eq!(downed.len(), 2);
        alloc.check_consistency().unwrap();
    }

    #[test]
    fn no_plan_when_capacity_tight() {
        let (mut pd, mut alloc) = setup();
        // Fill 7 of 8 rank-capacities: 16 segs/rank * 4 ranks * 2 ch = 128;
        // allocate 14 AUs of 8 = 112 segments, leaving 16 free (1 rank per
        // channel would need 16 per channel; we have 8 per channel).
        for _ in 0..14 {
            alloc.allocate_au(8).unwrap();
        }
        assert!(pd.plan_power_down(&mut alloc).is_none());
    }

    #[test]
    fn keeps_at_least_one_active_rank() {
        let (mut pd, mut alloc) = setup();
        for _ in 0..3 {
            let plan = pd.plan_power_down(&mut alloc).unwrap();
            pd.register_drain_jobs(&plan, &[]);
        }
        // 3 of 4 ranks down; a 4th plan would leave zero active.
        assert!(pd.plan_power_down(&mut alloc).is_none());
        assert_eq!(pd.active_ranks(0), 1);
        assert_eq!(pd.powered_down_ranks(0), 3);
    }

    #[test]
    fn wake_restores_capacity() {
        let (mut pd, mut alloc) = setup();
        for _ in 0..3 {
            let plan = pd.plan_power_down(&mut alloc).unwrap();
            pd.register_drain_jobs(&plan, &[]);
        }
        let free_before = alloc.free_active_total();
        let exits = pd.wake_one_group(&mut alloc).unwrap();
        assert_eq!(exits.len(), 2, "one MPSM exit per channel");
        assert!(alloc.free_active_total() > free_before);
        assert_eq!(pd.stats().groups_woken, 1);
        assert_eq!(pd.active_ranks(0), 2);
    }

    #[test]
    fn repeated_power_down_cycles_the_same_group() {
        let (mut pd, mut alloc) = setup();
        // Empty device: the first plan picks the least-allocated rank of
        // each channel and powers it down with zero copies.
        let plan1 = pd.plan_power_down(&mut alloc).expect("first group");
        let first = plan1.group.clone();
        pd.register_drain_jobs(&plan1, &[]);
        for &(c, r) in &first {
            assert_eq!(pd.rank_state(c, r), RankPdState::PoweredDown);
        }
        // Planning again must select a *different* group — a powered-down
        // rank is not active and cannot be re-victimized.
        let plan2 = pd.plan_power_down(&mut alloc).expect("second group");
        for (a, b) in plan2.group.iter().zip(&first) {
            assert_ne!(a, b, "powered-down rank re-selected");
        }
        pd.register_drain_jobs(&plan2, &[]);
        // Third group still leaves >= 1 active rank; the fourth attempt
        // must refuse (each channel needs two active ranks to plan).
        let plan3 = pd.plan_power_down(&mut alloc).expect("third group");
        pd.register_drain_jobs(&plan3, &[]);
        assert_eq!(pd.active_ranks(0), 1);
        assert!(pd.plan_power_down(&mut alloc).is_none(), "last active rank protected");
        assert_eq!(pd.stats().groups_powered_down, 3);
        // Wake one group and power it straight back down: the same ranks
        // cycle Active -> PoweredDown repeatedly without residue.
        let woken = pd.wake_one_group(&mut alloc).expect("a group to wake");
        assert_eq!(woken.len(), 2);
        for &(c, r) in &woken {
            assert_eq!(pd.rank_state(c, r), RankPdState::Active);
            assert!(alloc.is_rank_active(c, r));
        }
        let again = pd.plan_power_down(&mut alloc).expect("re-plan after wake");
        assert_eq!(again.group, woken, "the woken group is the least-allocated victim again");
        pd.register_drain_jobs(&again, &[]);
        for &(c, r) in &woken {
            assert_eq!(pd.rank_state(c, r), RankPdState::PoweredDown);
            assert!(!alloc.is_rank_active(c, r));
        }
        assert_eq!(pd.stats().groups_powered_down, 4);
        assert_eq!(pd.stats().groups_woken, 1);
        alloc.check_consistency().unwrap();
    }

    #[test]
    fn draining_group_is_not_revictimized() {
        let (mut pd, mut alloc) = setup();
        // Load one rank per channel so the victim has live data to drain.
        let aus: Vec<Vec<Dsn>> = (0..5).map(|_| alloc.allocate_au(8).unwrap()).collect();
        for au in &aus[1..4] {
            alloc.free_segments(au).unwrap();
        }
        // The two empty rank groups power down immediately; the third plan
        // must drain a rank that still holds live segments.
        for _ in 0..2 {
            let p = pd.plan_power_down(&mut alloc).expect("empty group");
            assert!(p.copies.is_empty());
            pd.register_drain_jobs(&p, &[]);
        }
        let plan = pd.plan_power_down(&mut alloc).expect("plan with live data");
        assert!(!plan.copies.is_empty());
        let ids: Vec<u64> = (0..plan.copies.len() as u64).collect();
        pd.register_drain_jobs(&plan, &ids);
        for &(c, r) in &plan.group {
            assert_eq!(pd.rank_state(c, r), RankPdState::Draining);
        }
        // While the drain is in flight, a new plan must not pick the same
        // ranks (they are mid-drain) — and completing the jobs finalizes
        // the group exactly once.
        if let Some(p2) = pd.plan_power_down(&mut alloc) {
            for (a, b) in p2.group.iter().zip(&plan.group) {
                assert_ne!(a, b, "draining rank re-selected");
            }
        }
        let mut downed = Vec::new();
        for id in ids {
            downed.extend(pd.on_migration_complete(id));
        }
        assert_eq!(downed, plan.group);
        for &(c, r) in &plan.group {
            assert_eq!(pd.rank_state(c, r), RankPdState::PoweredDown);
        }
        // Re-notifying a finished job is a no-op, not a double finalize.
        assert!(pd.on_migration_complete(999).is_empty());
    }

    #[test]
    fn wake_with_nothing_down_errors() {
        let (mut pd, mut alloc) = setup();
        assert!(pd.wake_one_group(&mut alloc).is_err());
    }

    #[test]
    fn reactivated_draining_rank_does_not_power_down() {
        let (mut pd, mut alloc) = setup();
        let aus: Vec<Vec<Dsn>> = (0..5).map(|_| alloc.allocate_au(8).unwrap()).collect();
        for au in &aus[1..4] {
            alloc.free_segments(au).unwrap();
        }
        for _ in 0..2 {
            let plan = pd.plan_power_down(&mut alloc).unwrap();
            pd.register_drain_jobs(&plan, &[]);
        }
        let plan = pd.plan_power_down(&mut alloc).unwrap();
        assert!(!plan.copies.is_empty());
        let ids: Vec<u64> = (0..plan.copies.len() as u64).collect();
        pd.register_drain_jobs(&plan, &ids);
        // Capacity crunch: wake everything. Powered-down groups go first
        // (they need MPSM exits); the draining group reactivates last and
        // needs no DRAM command.
        for _ in 0..2 {
            let exits = pd.wake_one_group(&mut alloc).unwrap();
            assert_eq!(exits.len(), 2, "powered-down ranks need MPSM exits");
        }
        let exits = pd.wake_one_group(&mut alloc).unwrap();
        assert!(exits.is_empty(), "draining ranks reactivate without MPSM exit");
        // Migrations finish, but the group must NOT power down.
        let mut downed = Vec::new();
        for id in ids {
            downed.extend(pd.on_migration_complete(id));
        }
        assert!(downed.is_empty());
        assert_eq!(pd.active_ranks(0), 4, "everything woke back up");
    }

    #[test]
    fn unknown_job_completion_is_ignored() {
        let (mut pd, _alloc) = setup();
        assert!(pd.on_migration_complete(999).is_empty());
    }
}
