//! The two-level segment mapping cache (SMC) — the paper's TLB-like
//! structure that keeps HSN→DSN translations close to the datapath
//! (§3.2, Table 3): a 64-entry fully-associative L1 and a 1024-entry
//! 4-way set-associative L2, both LRU.

use serde::{Deserialize, Serialize};

use crate::addr::{Dsn, Hsn};

/// Where a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmcOutcome {
    /// Hit in the L1 SMC (1 controller cycle).
    L1Hit,
    /// Hit in the L2 SMC (7 controller cycles).
    L2Hit,
    /// Missed both levels; the three-level table walk is needed.
    Miss,
}

/// Hit/miss counters of both levels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmcStats {
    /// Lookups that hit L1.
    pub l1_hits: u64,
    /// Lookups that missed L1.
    pub l1_misses: u64,
    /// L1 misses that hit L2.
    pub l2_hits: u64,
    /// L1 misses that also missed L2.
    pub l2_misses: u64,
}

impl SmcStats {
    /// L1 miss ratio over all lookups (the paper measures 14.7 %).
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// L2 miss ratio over L1 misses (the paper measures 15.4 %).
    pub fn l2_miss_ratio(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    dsn: Dsn,
    lru: u64,
    valid: bool,
}

const INVALID: Entry = Entry { key: 0, dsn: Dsn(0), lru: 0, valid: false };

/// The two-level segment mapping cache.
///
/// # Examples
///
/// ```
/// use dtl_core::{Dsn, Hsn, HostId, AuId, SegmentMappingCache, SmcOutcome};
///
/// let mut smc = SegmentMappingCache::new(4, 16, 4);
/// let hsn = Hsn { host: HostId(0), au: AuId(0), au_offset: 7 };
/// assert_eq!(smc.lookup(hsn), (SmcOutcome::Miss, None));
/// smc.fill(hsn, Dsn(42));
/// assert_eq!(smc.lookup(hsn), (SmcOutcome::L1Hit, Some(Dsn(42))));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentMappingCache {
    l1: Vec<Entry>,
    l2: Vec<Entry>,
    l2_sets: usize,
    l2_ways: usize,
    tick: u64,
    stats: SmcStats,
}

impl SegmentMappingCache {
    /// Builds an empty SMC.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero, `l2_entries` is not divisible by
    /// `l2_ways`, or the L2 set count is not a power of two.
    pub fn new(l1_entries: usize, l2_entries: usize, l2_ways: usize) -> Self {
        assert!(l1_entries > 0 && l2_entries > 0 && l2_ways > 0, "SMC sizes must be non-zero");
        assert_eq!(l2_entries % l2_ways, 0, "L2 entries must divide into ways");
        let l2_sets = l2_entries / l2_ways;
        assert!(l2_sets.is_power_of_two(), "L2 set count must be a power of two");
        SegmentMappingCache {
            l1: vec![INVALID; l1_entries],
            l2: vec![INVALID; l2_entries],
            l2_sets,
            l2_ways,
            tick: 0,
            stats: SmcStats::default(),
        }
    }

    /// Builds the paper's SMC: 64-entry L1, 1024-entry 4-way L2.
    pub fn paper() -> Self {
        SegmentMappingCache::new(64, 1024, 4)
    }

    /// Statistics so far.
    pub fn stats(&self) -> SmcStats {
        self.stats
    }

    fn l2_set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = (key as usize) & (self.l2_sets - 1);
        let start = set * self.l2_ways;
        start..start + self.l2_ways
    }

    /// Looks up `hsn`; on an L2 hit the entry is promoted into L1.
    pub fn lookup(&mut self, hsn: Hsn) -> (SmcOutcome, Option<Dsn>) {
        let key = hsn.pack();
        self.tick += 1;
        let tick = self.tick;
        // L1: fully associative scan.
        if let Some(e) = self.l1.iter_mut().find(|e| e.valid && e.key == key) {
            e.lru = tick;
            self.stats.l1_hits += 1;
            return (SmcOutcome::L1Hit, Some(e.dsn));
        }
        self.stats.l1_misses += 1;
        // L2.
        let range = self.l2_set_range(key);
        let mut found: Option<Dsn> = None;
        for e in &mut self.l2[range] {
            if e.valid && e.key == key {
                e.lru = tick;
                found = Some(e.dsn);
                break;
            }
        }
        if let Some(dsn) = found {
            self.stats.l2_hits += 1;
            self.insert_l1(key, dsn);
            (SmcOutcome::L2Hit, Some(dsn))
        } else {
            self.stats.l2_misses += 1;
            (SmcOutcome::Miss, None)
        }
    }

    /// Installs a translation after a table walk (fills both levels).
    pub fn fill(&mut self, hsn: Hsn, dsn: Dsn) {
        let key = hsn.pack();
        self.tick += 1;
        self.insert_l1(key, dsn);
        self.insert_l2(key, dsn);
    }

    /// Invalidates an HSN in both levels (called on remap); returns whether
    /// any entry was present.
    pub fn invalidate(&mut self, hsn: Hsn) -> bool {
        let key = hsn.pack();
        let mut any = false;
        for e in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            if e.valid && e.key == key {
                e.valid = false;
                any = true;
            }
        }
        any
    }

    fn insert_l1(&mut self, key: u64, dsn: Dsn) {
        let tick = self.tick;
        if let Some(e) = self.l1.iter_mut().find(|e| e.valid && e.key == key) {
            e.dsn = dsn;
            e.lru = tick;
            return;
        }
        let victim = self
            .l1
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("l1 non-empty");
        *victim = Entry { key, dsn, lru: tick, valid: true };
    }

    fn insert_l2(&mut self, key: u64, dsn: Dsn) {
        let tick = self.tick;
        let range = self.l2_set_range(key);
        let set = &mut self.l2[range];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.key == key) {
            e.dsn = dsn;
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("set non-empty");
        *victim = Entry { key, dsn, lru: tick, valid: true };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AuId, HostId};

    fn hsn(off: u32) -> Hsn {
        Hsn { host: HostId(0), au: AuId(0), au_offset: off }
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut smc = SegmentMappingCache::new(2, 8, 2);
        assert_eq!(smc.lookup(hsn(1)), (SmcOutcome::Miss, None));
        smc.fill(hsn(1), Dsn(10));
        assert_eq!(smc.lookup(hsn(1)), (SmcOutcome::L1Hit, Some(Dsn(10))));
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut smc = SegmentMappingCache::new(2, 64, 4);
        for i in 0..8 {
            smc.fill(hsn(i), Dsn(u64::from(i)));
        }
        // hsn(0) long evicted from the 2-entry L1, still in L2.
        let (outcome, dsn) = smc.lookup(hsn(0));
        assert_eq!(outcome, SmcOutcome::L2Hit);
        assert_eq!(dsn, Some(Dsn(0)));
        // And the L2 hit promoted it to L1.
        assert_eq!(smc.lookup(hsn(0)).0, SmcOutcome::L1Hit);
    }

    #[test]
    fn invalidate_removes_from_both_levels() {
        let mut smc = SegmentMappingCache::new(2, 8, 2);
        smc.fill(hsn(1), Dsn(10));
        assert!(smc.invalidate(hsn(1)));
        assert_eq!(smc.lookup(hsn(1)), (SmcOutcome::Miss, None));
        assert!(!smc.invalidate(hsn(1)), "second invalidate finds nothing");
    }

    #[test]
    fn refill_updates_translation() {
        let mut smc = SegmentMappingCache::new(4, 8, 2);
        smc.fill(hsn(1), Dsn(10));
        smc.fill(hsn(1), Dsn(20)); // remap
        assert_eq!(smc.lookup(hsn(1)).1, Some(Dsn(20)));
    }

    #[test]
    fn stats_track_ratios() {
        let mut smc = SegmentMappingCache::new(2, 8, 2);
        smc.lookup(hsn(1)); // miss
        smc.fill(hsn(1), Dsn(1));
        smc.lookup(hsn(1)); // L1 hit
        let s = smc.stats();
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
        assert!((s.l1_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.l2_miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_hosts_do_not_collide() {
        let mut smc = SegmentMappingCache::paper();
        let a = Hsn { host: HostId(1), au: AuId(0), au_offset: 0 };
        let b = Hsn { host: HostId(2), au: AuId(0), au_offset: 0 };
        smc.fill(a, Dsn(1));
        smc.fill(b, Dsn(2));
        assert_eq!(smc.lookup(a).1, Some(Dsn(1)));
        assert_eq!(smc.lookup(b).1, Some(Dsn(2)));
    }

    #[test]
    fn lru_prefers_invalid_ways() {
        let mut smc = SegmentMappingCache::new(1, 4, 4);
        // All four L2 entries map to the single set.
        for i in 0..4 {
            smc.fill(hsn(i), Dsn(u64::from(i)));
        }
        // All four must be resident (invalid ways were used first).
        for i in 0..4 {
            assert_ne!(smc.lookup(hsn(i)).0, SmcOutcome::Miss, "offset {i}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_ways_panics() {
        let _ = SegmentMappingCache::new(4, 10, 4);
    }
}
