//! DRAM back ends for the DTL device.
//!
//! The paper evaluates the two mechanisms at very different time scales:
//! command-level simulation for latency/bandwidth behaviour, and
//! state-residency power integration over minutes-to-hours schedules. The
//! [`MemoryBackend`] trait lets one `DtlDevice` code path run over either:
//!
//! * [`CycleBackend`] — the cycle-level [`dtl_dram::DramSystem`] (FR-FCFS,
//!   full timing), for bounded windows;
//! * [`AnalyticBackend`] — fixed service latency plus the same rank
//!   power-state and energy accounting, fast enough for six-hour schedules
//!   (this is exactly the fidelity of the paper's own §5 methodology).

use std::fmt;

use dtl_dram::{
    AccessKind, AddressMapping, DramConfig, EnergyAccount, Picos, PowerEvent, PowerEventCause,
    PowerParams, PowerReport, PowerState, Priority, RankEnergy, RankId,
};
use dtl_telemetry::{EventKind, Telemetry};

use crate::addr::{SegmentGeometry, SegmentLocation};
use crate::error::DtlError;

/// A DRAM device the DTL can drive.
pub trait MemoryBackend: fmt::Debug {
    /// Segment-level geometry (channels, ranks, segments per rank).
    fn geometry(&self) -> SegmentGeometry;

    /// Segment size in bytes.
    fn segment_bytes(&self) -> u64;

    /// Current backend time.
    fn now(&self) -> Picos;

    /// Advances backend time (runs schedulers, integrates residency).
    fn advance_to(&mut self, t: Picos);

    /// Issues one 64 B access to `offset` within the segment slot `loc` at
    /// time `at`; returns the estimated completion time. A rank in a
    /// low-power state is automatically woken (the exit latency is part of
    /// the returned completion time).
    fn access(
        &mut self,
        loc: SegmentLocation,
        offset: u64,
        kind: AccessKind,
        priority: Priority,
        at: Picos,
    ) -> Picos;

    /// Commands a rank power-state transition; returns its completion time.
    ///
    /// # Errors
    ///
    /// Propagates illegal-transition errors from the device model.
    fn set_rank_state(
        &mut self,
        channel: u32,
        rank: u32,
        state: PowerState,
        now: Picos,
    ) -> Result<Picos, DtlError>;

    /// Current power state of a rank.
    fn rank_state(&self, channel: u32, rank: u32) -> PowerState;

    /// Schedules a transfer of `bytes` from `src` to `dst` as
    /// migration-class traffic; returns the estimated completion time.
    /// Energy is **not** charged here — the migration engine charges the
    /// actually-moved lines via [`MemoryBackend::charge_migration`]
    /// (aborted jobs pay only for what they copied).
    fn bulk_copy(
        &mut self,
        src: SegmentLocation,
        dst: SegmentLocation,
        bytes: u64,
        at: Picos,
    ) -> Picos;

    /// Charges the energy of `lines` migrated lines: reads on `src`,
    /// writes on `dst`. Backends that simulate migration traffic as real
    /// requests (cycle-level) implement this as a no-op.
    fn charge_migration(&mut self, src: SegmentLocation, dst: SegmentLocation, lines: u64);

    /// Integrates energy to `now` and reports it.
    fn power_report(&mut self, now: Picos) -> PowerReport;

    /// Drains rank power events (auto exits, explicit transitions).
    fn drain_power_events(&mut self) -> Vec<PowerEvent>;

    /// Estimated raw DRAM access latency (used by the translation miss-path
    /// cost model).
    fn est_access_latency(&self) -> Picos;

    /// Installs a telemetry handle. Backends that own the power-state
    /// machinery emit `RankPowerTransition` events when power events are
    /// drained; the default ignores the handle.
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        let _ = telemetry;
    }

    /// Cumulative power-state residency of one rank, integrated up to the
    /// backend's current time *without* mutating accounting state. Indexed
    /// by [`dtl_telemetry::PowerStateId::index`] order (Standby, APD, PPD,
    /// SelfRefresh, MPSM). Backends without residency tracking return zeros.
    fn rank_residency(&self, channel: u32, rank: u32) -> [Picos; 5] {
        let _ = (channel, rank);
        [Picos::ZERO; 5]
    }

    /// Upper bound on how far a rank's residency clock (the sum of
    /// [`MemoryBackend::rank_residency`]) may run **ahead** of the
    /// backend's current time. Transition completions are future-dated
    /// (`done = now + latency`), so the residency integral of a rank with
    /// an in-flight transition extends to `done`; it never lags `now`.
    /// Backends that integrate residency analytically return their exact
    /// worst-case transition latency; the default is a conservative 1 µs
    /// for backends whose transition timing is emergent (cycle-level).
    fn residency_slack(&self) -> Picos {
        Picos::from_us(1)
    }
}

// ---------------------------------------------------------------------
// Analytic backend
// ---------------------------------------------------------------------

/// Fast backend: fixed service latency, bandwidth-model migrations, full
/// power-state/energy accounting.
#[derive(Debug)]
pub struct AnalyticBackend {
    geo: SegmentGeometry,
    segment_bytes: u64,
    /// Raw DRAM service latency for one access (paper Table 1: 121 ns).
    pub service_latency: Picos,
    /// Self-refresh exit penalty.
    pub sr_exit: Picos,
    /// MPSM exit penalty.
    pub mpsm_exit: Picos,
    /// Per-channel bandwidth available to migration traffic.
    pub migration_bw_bytes_per_sec: f64,
    accounts: Vec<Vec<EnergyAccount>>,
    events: Vec<PowerEvent>,
    now: Picos,
    telemetry: Telemetry,
}

impl AnalyticBackend {
    /// Builds an analytic backend with the paper's latency constants.
    pub fn new(geo: SegmentGeometry, segment_bytes: u64, params: PowerParams) -> Self {
        let accounts = (0..geo.channels)
            .map(|_| (0..geo.ranks_per_channel).map(|_| EnergyAccount::new(params)).collect())
            .collect();
        AnalyticBackend {
            geo,
            segment_bytes,
            service_latency: Picos::from_ns(121),
            sr_exit: Picos::from_ns(560),
            mpsm_exit: Picos::from_ns(500),
            // The paper measures 24 GB migrated in 1.3 s over 4 channels
            // (~4.6 GB/s per channel of opportunistic bandwidth).
            migration_bw_bytes_per_sec: 4.6e9,
            accounts,
            events: Vec::new(),
            now: Picos::ZERO,
            telemetry: Telemetry::disabled(),
        }
    }

    fn account(&mut self, channel: u32, rank: u32) -> &mut EnergyAccount {
        &mut self.accounts[channel as usize][rank as usize]
    }

    /// Records aggregate foreground activity on a rank without simulating
    /// individual accesses — used by epoch-based (hours-long) power studies
    /// where only the energy matters.
    pub fn record_foreground_bulk(&mut self, channel: u32, rank: u32, reads: u64, writes: u64) {
        let acc = self.account(channel, rank);
        acc.record_reads_bulk(reads);
        acc.record_writes_bulk(writes);
        acc.record_activates_bulk((reads + writes) / 4);
    }

    fn wake_if_needed(&mut self, channel: u32, rank: u32, at: Picos) -> Picos {
        let state = self.accounts[channel as usize][rank as usize].state();
        match state {
            PowerState::Standby => at,
            low => {
                let exit = match low {
                    PowerState::SelfRefresh => self.sr_exit,
                    PowerState::Mpsm => self.mpsm_exit,
                    _ => Picos::from_ns(7),
                };
                let done = at + exit;
                self.account(channel, rank).transition(done, PowerState::Standby);
                self.events.push(PowerEvent {
                    at: done,
                    channel,
                    rank,
                    from: low,
                    to: PowerState::Standby,
                    cause: PowerEventCause::AutoExit,
                });
                done
            }
        }
    }
}

impl MemoryBackend for AnalyticBackend {
    fn geometry(&self) -> SegmentGeometry {
        self.geo
    }

    fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    fn now(&self) -> Picos {
        self.now
    }

    fn advance_to(&mut self, t: Picos) {
        self.now = self.now.max(t);
    }

    fn access(
        &mut self,
        loc: SegmentLocation,
        _offset: u64,
        kind: AccessKind,
        _priority: Priority,
        at: Picos,
    ) -> Picos {
        let ready = self.wake_if_needed(loc.channel, loc.rank, at);
        let acc = self.account(loc.channel, loc.rank);
        if kind.is_write() {
            acc.record_write();
        } else {
            acc.record_read();
        }
        // Roughly every fourth access opens a new row in steady state.
        acc.record_activate_fractional(0.25);
        self.now = self.now.max(at);
        ready + self.service_latency
    }

    fn set_rank_state(
        &mut self,
        channel: u32,
        rank: u32,
        state: PowerState,
        now: Picos,
    ) -> Result<Picos, DtlError> {
        let from = self.accounts[channel as usize][rank as usize].state();
        if from == state {
            return Ok(now);
        }
        if !dtl_dram::transition_is_legal(from, state) {
            return Err(DtlError::Dram(dtl_dram::DramError::IllegalPowerTransition {
                reason: format!("illegal rank power transition {from:?} -> {state:?}"),
            }));
        }
        let exit = |s: PowerState| match s {
            PowerState::SelfRefresh => self.sr_exit,
            PowerState::Mpsm => self.mpsm_exit,
            _ => Picos::from_ns(7),
        };
        let latency = match (from, state) {
            (_, PowerState::Standby) => exit(from),
            (PowerState::Standby, _) => Picos::from_ns(5), // entry latency (tCKE-scale)
            // Ladder demotion: implicit exit of the shallower state plus
            // the deeper entry.
            _ => exit(from) + Picos::from_ns(5),
        };
        let done = now + latency;
        self.account(channel, rank).transition(done, state);
        self.events.push(PowerEvent {
            at: done,
            channel,
            rank,
            from,
            to: state,
            cause: PowerEventCause::Explicit,
        });
        self.now = self.now.max(now);
        Ok(done)
    }

    fn rank_state(&self, channel: u32, rank: u32) -> PowerState {
        self.accounts[channel as usize][rank as usize].state()
    }

    fn bulk_copy(
        &mut self,
        src: SegmentLocation,
        dst: SegmentLocation,
        bytes: u64,
        at: Picos,
    ) -> Picos {
        let start_src = self.wake_if_needed(src.channel, src.rank, at);
        let start = if dst == src {
            start_src
        } else {
            self.wake_if_needed(dst.channel, dst.rank, start_src)
        };
        // Source and destination may share a channel; bandwidth halves.
        let bw = if src.channel == dst.channel {
            self.migration_bw_bytes_per_sec / 2.0
        } else {
            self.migration_bw_bytes_per_sec
        };
        let secs = bytes as f64 / bw;
        self.now = self.now.max(at);
        start + Picos::from_ps((secs * 1e12) as u64)
    }

    fn power_report(&mut self, now: Picos) -> PowerReport {
        let mut per_rank = Vec::with_capacity(self.geo.channels as usize);
        let mut residency = Vec::with_capacity(self.geo.channels as usize);
        let mut total = RankEnergy::default();
        for ch in &mut self.accounts {
            let mut col = Vec::with_capacity(ch.len());
            let mut res_col = Vec::with_capacity(ch.len());
            for acc in ch.iter_mut() {
                acc.advance_to(now);
                let e = acc.energy();
                total.accumulate(&e);
                col.push(e);
                let mut res = [Picos::ZERO; 5];
                for (i, s) in PowerState::ALL.iter().enumerate() {
                    res[i] = acc.residency(*s);
                }
                res_col.push(res);
            }
            per_rank.push(col);
            residency.push(res_col);
        }
        self.now = self.now.max(now);
        PowerReport { at: now, per_rank, total, residency }
    }

    fn drain_power_events(&mut self) -> Vec<PowerEvent> {
        let events = std::mem::take(&mut self.events);
        if self.telemetry.enabled() {
            for ev in &events {
                self.telemetry.emit(
                    ev.at.as_ps(),
                    EventKind::RankPowerTransition {
                        channel: ev.channel,
                        rank: ev.rank,
                        from: ev.from.telemetry_id(),
                        to: ev.to.telemetry_id(),
                        auto_exit: ev.cause == PowerEventCause::AutoExit,
                    },
                );
            }
        }
        events
    }

    fn est_access_latency(&self) -> Picos {
        self.service_latency
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn rank_residency(&self, channel: u32, rank: u32) -> [Picos; 5] {
        self.accounts[channel as usize][rank as usize].residency_to(self.now)
    }

    fn residency_slack(&self) -> Picos {
        // Every future-dated `transition(done, ..)` uses one of: an exit
        // latency (self-refresh, MPSM, or the 7 ns power-down exit), the
        // 5 ns entry latency, or — on chained transitions such as parking a
        // rank that sits in a low-power state — an exit immediately followed
        // by an entry. The residency clock can run ahead of `now` by at most
        // the largest exit plus one entry — exactly, because residency is
        // integrated in closed form at transition boundaries, never per tick.
        self.sr_exit.max(self.mpsm_exit).max(Picos::from_ns(7)) + Picos::from_ns(5)
    }

    fn charge_migration(&mut self, src: SegmentLocation, dst: SegmentLocation, lines: u64) {
        let src_acc = self.account(src.channel, src.rank);
        src_acc.record_reads_bulk(lines);
        src_acc.record_activates_bulk(lines / 128); // one row per 8 KiB
        let dst_acc = self.account(dst.channel, dst.rank);
        dst_acc.record_writes_bulk(lines);
        dst_acc.record_activates_bulk(lines / 128);
    }
}

// ---------------------------------------------------------------------
// Cycle-accurate backend
// ---------------------------------------------------------------------

/// Cycle-level backend over [`dtl_dram::DramSystem`] with the Figure 6
/// rank-MSB mapping.
#[derive(Debug)]
pub struct CycleBackend {
    dram: dtl_dram::DramSystem,
    geo: SegmentGeometry,
    segment_bytes: u64,
    /// Estimated per-access service latency used for the returned
    /// completion estimates (the queue simulation produces exact
    /// completions separately).
    pub est_latency: Picos,
}

impl CycleBackend {
    /// Builds a cycle backend with the DTL mapping at `segment_bytes`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the DRAM simulator.
    pub fn new(config: DramConfig, segment_bytes: u64) -> Result<Self, DtlError> {
        let geo = SegmentGeometry::new(
            config.geometry.channels,
            config.geometry.ranks_per_channel,
            config.geometry.rank_bytes(),
            segment_bytes,
        );
        let dram = dtl_dram::DramSystem::new(config, AddressMapping::DtlRankMsb { segment_bytes })?;
        Ok(CycleBackend { dram, geo, segment_bytes, est_latency: Picos::from_ns(121) })
    }

    /// The wrapped DRAM system (completions, stats, command sinks).
    pub fn dram(&self) -> &dtl_dram::DramSystem {
        &self.dram
    }

    /// Mutable access to the wrapped DRAM system.
    pub fn dram_mut(&mut self) -> &mut dtl_dram::DramSystem {
        &mut self.dram
    }

    /// The device physical address of `offset` within segment slot `loc`.
    pub fn dpa(&self, loc: SegmentLocation, offset: u64) -> dtl_dram::PhysAddr {
        let dsn = self.geo.dsn(loc);
        dtl_dram::PhysAddr::new(dsn.0 * self.segment_bytes + (offset % self.segment_bytes))
    }
}

impl MemoryBackend for CycleBackend {
    fn geometry(&self) -> SegmentGeometry {
        self.geo
    }

    fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    fn now(&self) -> Picos {
        self.dram.now()
    }

    fn advance_to(&mut self, t: Picos) {
        self.dram.advance_to(t);
    }

    fn access(
        &mut self,
        loc: SegmentLocation,
        offset: u64,
        kind: AccessKind,
        priority: Priority,
        at: Picos,
    ) -> Picos {
        let dpa = self.dpa(loc, offset);
        self.dram.submit(dpa, kind, priority, at).expect("segment-geometry addresses are in range");
        at + self.est_latency
    }

    fn set_rank_state(
        &mut self,
        channel: u32,
        rank: u32,
        state: PowerState,
        now: Picos,
    ) -> Result<Picos, DtlError> {
        self.dram.set_rank_state(RankId { channel, rank }, state, now).map_err(DtlError::Dram)
    }

    fn rank_state(&self, channel: u32, rank: u32) -> PowerState {
        self.dram.rank_state(RankId { channel, rank })
    }

    fn bulk_copy(
        &mut self,
        src: SegmentLocation,
        dst: SegmentLocation,
        bytes: u64,
        at: Picos,
    ) -> Picos {
        let lines = bytes / 64;
        for i in 0..lines {
            let off = i * 64;
            self.dram
                .submit(self.dpa(src, off), AccessKind::Read, Priority::Migration, at)
                .expect("in range");
            self.dram
                .submit(self.dpa(dst, off), AccessKind::Write, Priority::Migration, at)
                .expect("in range");
        }
        // Rough estimate; the queues determine the real finish time.
        let bw = self.dram.config().timing.peak_channel_bandwidth() / 2.0;
        at + Picos::from_ps((bytes as f64 / bw * 1e12) as u64)
    }

    fn power_report(&mut self, now: Picos) -> PowerReport {
        self.dram.power_report(now)
    }

    fn drain_power_events(&mut self) -> Vec<PowerEvent> {
        self.dram.drain_power_events()
    }

    fn est_access_latency(&self) -> Picos {
        self.est_latency
    }

    fn charge_migration(&mut self, _src: SegmentLocation, _dst: SegmentLocation, _lines: u64) {
        // The cycle backend enqueued real migration requests in bulk_copy;
        // their energy is accounted by the DRAM simulator itself.
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.dram.set_telemetry(telemetry);
    }

    fn rank_residency(&self, channel: u32, rank: u32) -> [Picos; 5] {
        self.dram.rank_residency(RankId { channel, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> SegmentGeometry {
        SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 }
    }

    fn analytic() -> AnalyticBackend {
        AnalyticBackend::new(geo(), 256 << 10, PowerParams::ddr4_128gb_dimm())
    }

    #[test]
    fn analytic_access_returns_service_latency() {
        let mut b = analytic();
        let loc = SegmentLocation { channel: 0, rank: 0, within: 0 };
        let done = b.access(loc, 0, AccessKind::Read, Priority::Foreground, Picos::from_us(1));
        assert_eq!(done, Picos::from_us(1) + b.service_latency);
    }

    #[test]
    fn analytic_wakes_sleeping_rank_with_penalty() {
        let mut b = analytic();
        b.set_rank_state(0, 1, PowerState::SelfRefresh, Picos::ZERO).unwrap();
        let loc = SegmentLocation { channel: 0, rank: 1, within: 0 };
        let done = b.access(loc, 0, AccessKind::Read, Priority::Foreground, Picos::from_us(1));
        assert_eq!(done, Picos::from_us(1) + b.sr_exit + b.service_latency);
        assert_eq!(b.rank_state(0, 1), PowerState::Standby);
        let evs = b.drain_power_events();
        assert_eq!(evs.len(), 2); // explicit entry + auto exit
        assert_eq!(evs[1].cause, PowerEventCause::AutoExit);
    }

    #[test]
    fn analytic_power_report_reflects_states() {
        let mut b = analytic();
        b.set_rank_state(0, 0, PowerState::Mpsm, Picos::ZERO).unwrap();
        let horizon = Picos::from_ms(100);
        let rep = b.power_report(horizon);
        let mpsm_rank = rep.per_rank[0][0].background_mj;
        let standby_rank = rep.per_rank[0][1].background_mj;
        let ratio = mpsm_rank / standby_rank;
        assert!((ratio - 0.068).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn analytic_illegal_transition_rejected() {
        let mut b = analytic();
        b.set_rank_state(0, 0, PowerState::SelfRefresh, Picos::ZERO).unwrap();
        assert!(b.set_rank_state(0, 0, PowerState::Mpsm, Picos::from_us(1)).is_err());
    }

    #[test]
    fn analytic_ladder_demotion_pays_exit_plus_entry() {
        let mut b = analytic();
        let t0 = Picos::from_us(1);
        let apd = b.set_rank_state(0, 0, PowerState::ActivePowerDown, t0).unwrap();
        assert_eq!(apd, t0 + Picos::from_ns(5));
        // APD -> PPD: the 7 ns power-down exit plus the 5 ns entry.
        let t1 = Picos::from_us(2);
        let ppd = b.set_rank_state(0, 0, PowerState::PrechargePowerDown, t1).unwrap();
        assert_eq!(ppd, t1 + Picos::from_ns(12));
        // PPD -> SR, same shape; rung skipping still rejected.
        let t2 = Picos::from_us(3);
        let sr = b.set_rank_state(0, 0, PowerState::SelfRefresh, t2).unwrap();
        assert_eq!(sr, t2 + Picos::from_ns(12));
        assert!(b.set_rank_state(0, 1, PowerState::SelfRefresh, t2).is_ok());
        assert!(b.set_rank_state(0, 2, PowerState::ActivePowerDown, t2).is_ok());
        assert!(b.set_rank_state(0, 2, PowerState::SelfRefresh, t2).is_err());
        // The wake path handles every ladder state generically.
        let loc = SegmentLocation { channel: 0, rank: 0, within: 0 };
        let t3 = Picos::from_us(4);
        let done = b.access(loc, 0, AccessKind::Read, Priority::Foreground, t3);
        assert_eq!(done, t3 + b.sr_exit + b.service_latency);
        assert_eq!(b.rank_state(0, 0), PowerState::Standby);
    }

    #[test]
    fn analytic_residency_clock_stays_within_slack() {
        let mut b = analytic();
        // Chained transition (the park path): SR exit immediately followed
        // by an MPSM entry future-dates the residency clock by exit+entry.
        b.set_rank_state(0, 0, PowerState::SelfRefresh, Picos::ZERO).unwrap();
        let now = Picos::from_us(1);
        let standby = b.set_rank_state(0, 0, PowerState::Standby, now).unwrap();
        b.set_rank_state(0, 0, PowerState::Mpsm, standby).unwrap();
        let total: Picos = b.rank_residency(0, 0).iter().copied().sum();
        assert!(total >= b.now(), "the clock never lags now");
        assert!(
            total <= b.now() + b.residency_slack(),
            "clock {total} ran past now {} + slack {}",
            b.now(),
            b.residency_slack()
        );
    }

    #[test]
    fn analytic_bulk_copy_costs_bandwidth_time() {
        let mut b = analytic();
        let src = SegmentLocation { channel: 0, rank: 0, within: 0 };
        let dst = SegmentLocation { channel: 0, rank: 1, within: 0 };
        let done = b.bulk_copy(src, dst, 256 << 10, Picos::ZERO);
        // 256 KiB at 2.3 GB/s (same channel halves bandwidth) ~ 114 us.
        let secs = (256 << 10) as f64 / (4.6e9 / 2.0);
        let expect = Picos::from_ps((secs * 1e12) as u64);
        assert_eq!(done, expect);
        // Scheduling charges nothing; charge_migration does.
        let rep = b.power_report(Picos::from_ms(1));
        assert_eq!(rep.per_rank[0][0].read_mj, 0.0);
        b.charge_migration(src, dst, (256 << 10) / 64);
        let rep = b.power_report(Picos::from_ms(1));
        assert!(rep.per_rank[0][0].read_mj > 0.0);
        assert!(rep.per_rank[0][1].write_mj > 0.0);
    }

    #[test]
    fn cycle_backend_round_trips_requests() {
        let mut b = CycleBackend::new(DramConfig::tiny(), 256 << 10).unwrap();
        let loc = SegmentLocation { channel: 1, rank: 2, within: 3 };
        b.access(loc, 128, AccessKind::Read, Priority::Foreground, Picos::ZERO);
        b.advance_to(Picos::from_us(2));
        let done = b.dram_mut().drain_completions();
        assert_eq!(done.len(), 1);
        // Verify routing: the DPA decodes to the expected channel and rank.
        let dpa = b.dpa(loc, 128);
        let dec = b.dram().mapper().decode(dpa).unwrap();
        assert_eq!((dec.channel, dec.rank), (1, 2));
    }

    #[test]
    fn cycle_backend_bulk_copy_enqueues_migration_traffic() {
        let mut b = CycleBackend::new(DramConfig::tiny(), 256 << 10).unwrap();
        let src = SegmentLocation { channel: 0, rank: 0, within: 0 };
        let dst = SegmentLocation { channel: 0, rank: 1, within: 1 };
        b.bulk_copy(src, dst, 4096, Picos::ZERO);
        assert_eq!(b.dram().pending_migration(), 2 * 4096 / 64);
    }

    #[test]
    fn geometry_passthrough() {
        let b = analytic();
        assert_eq!(b.geometry(), geo());
        assert_eq!(b.segment_bytes(), 256 << 10);
    }
}
