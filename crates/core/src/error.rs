//! Error type of the DTL crate.

use core::fmt;

use crate::addr::{AuId, HostId, HostPhysAddr, VmHandle};

/// Errors reported by the DRAM Translation Layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DtlError {
    /// Configuration failed validation.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An unknown host id.
    UnknownHost(HostId),
    /// The host id exceeds the configured maximum.
    TooManyHosts {
        /// The rejected host.
        host: HostId,
        /// Configured limit.
        max_hosts: u16,
    },
    /// An HPA that is not mapped for the host (unallocated AU or beyond the
    /// host's address space).
    UnmappedAddress {
        /// The host that issued the access.
        host: HostId,
        /// The offending address.
        hpa: HostPhysAddr,
    },
    /// Not enough free device capacity for an allocation.
    OutOfCapacity {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free (including powered-down ranks).
        free: u64,
    },
    /// A VM handle that is not (or no longer) live.
    UnknownVm(VmHandle),
    /// Internal invariant violation surfaced as an error (indicates a bug).
    Internal {
        /// Human-readable description.
        reason: String,
    },
    /// A host exceeded its configured capacity quota.
    QuotaExceeded {
        /// The host at its limit.
        host: HostId,
        /// AUs currently mapped.
        mapped_aus: u32,
        /// The configured cap.
        quota_aus: u32,
    },
    /// An AU lookup failed (unallocated AU id).
    UnknownAu {
        /// Owning host.
        host: HostId,
        /// The missing AU.
        au: AuId,
    },
    /// The wrapped DRAM device reported an error.
    Dram(dtl_dram::DramError),
}

impl fmt::Display for DtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtlError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            DtlError::UnknownHost(h) => write!(f, "unknown host {h}"),
            DtlError::TooManyHosts { host, max_hosts } => {
                write!(f, "host {host} exceeds the configured maximum of {max_hosts}")
            }
            DtlError::UnmappedAddress { host, hpa } => {
                write!(f, "{host} accessed unmapped address {hpa}")
            }
            DtlError::OutOfCapacity { requested, free } => {
                write!(f, "requested {requested} bytes but only {free} free")
            }
            DtlError::UnknownVm(vm) => write!(f, "unknown VM handle {vm:?}"),
            DtlError::Internal { reason } => write!(f, "internal invariant violated: {reason}"),
            DtlError::QuotaExceeded { host, mapped_aus, quota_aus } => {
                write!(f, "{host} at {mapped_aus} AUs would exceed its quota of {quota_aus}")
            }
            DtlError::UnknownAu { host, au } => write!(f, "{host} has no allocation unit {au}"),
            DtlError::Dram(e) => write!(f, "dram: {e}"),
        }
    }
}

impl std::error::Error for DtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DtlError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dtl_dram::DramError> for DtlError {
    fn from(e: dtl_dram::DramError) -> Self {
        DtlError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DtlError::UnknownHost(HostId(5));
        assert!(e.to_string().contains("host5"));
        let e = DtlError::OutOfCapacity { requested: 100, free: 10 };
        assert!(e.to_string().contains("100"));
        let e: DtlError = dtl_dram::DramError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.to_string().contains("dram"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
