//! The DTL address spaces and their relationships.
//!
//! The DTL introduces one level of indirection (paper §3.2):
//!
//! * the host issues **host physical addresses** (HPA) over CXL;
//! * an HPA's upper bits form a **host segment number** (HSN) composed of
//!   *host ID*, *allocation unit* (AU) ID, and AU offset;
//! * the segment mapping table translates HSN to a **DRAM segment number**
//!   (DSN), whose position in the device physical address space is fixed by
//!   the Figure 6 bit mapping: channel bits lowest, then the within-rank
//!   segment index, then rank bits on top.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A host physical address as seen on the CXL link (per-host address
/// space).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct HostPhysAddr(u64);

impl HostPhysAddr {
    /// Creates an HPA from a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        HostPhysAddr(addr)
    }

    /// Raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte offset within its segment, given the segment size.
    #[inline]
    pub const fn segment_offset(self, segment_bytes: u64) -> u64 {
        self.0 % segment_bytes
    }

    /// The segment index within the host address space.
    #[inline]
    pub const fn segment_index(self, segment_bytes: u64) -> u64 {
        self.0 / segment_bytes
    }

    /// This address plus `bytes`.
    #[inline]
    pub const fn offset_by(self, bytes: u64) -> HostPhysAddr {
        HostPhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for HostPhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hpa:{:#x}", self.0)
    }
}

/// Identifier of a host (compute node) sharing the pooled device.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct HostId(pub u16);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Index of an allocation unit within a host's address space (the paper's
/// AU: the 2 GB minimum allocation granularity).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct AuId(pub u32);

impl fmt::Display for AuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "au{}", self.0)
    }
}

/// A host segment number: the fully qualified key of the segment mapping
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Hsn {
    /// Owning host.
    pub host: HostId,
    /// Allocation unit within the host.
    pub au: AuId,
    /// Segment index within the AU.
    pub au_offset: u32,
}

impl Hsn {
    /// Packs into a single integer key (for cache indexing). Layout:
    /// `host << 48 | au << 20 | au_offset` — AU offsets fit comfortably in
    /// 20 bits (a 2 GB AU of 2 MB segments has 1024 offsets).
    #[inline]
    pub fn pack(self) -> u64 {
        (u64::from(self.host.0) << 48) | (u64::from(self.au.0) << 20) | u64::from(self.au_offset)
    }
}

impl fmt::Display for Hsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.host, self.au, self.au_offset)
    }
}

/// Handle to a live VM allocation on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmHandle {
    /// The host the VM runs on.
    pub host: HostId,
    /// Device-assigned VM number, unique per host.
    pub vm: u32,
}

impl fmt::Display for VmHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/vm{}", self.host, self.vm)
    }
}

/// A DRAM segment number: index of a segment-sized slot in the device
/// physical address space under the Figure 6 mapping.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Dsn(pub u64);

impl fmt::Display for Dsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dsn{}", self.0)
    }
}

/// The physical location of a DSN: which channel, rank, and within-rank
/// slot it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Segment slot within the (channel, rank).
    pub within: u64,
}

/// Converts between [`Dsn`] and [`SegmentLocation`] for a given geometry.
///
/// Under the Figure 6 mapping, consecutive DSNs rotate over channels, so
/// `dsn = (rank * segs_per_rank + within) * channels + channel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentGeometry {
    /// Number of channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Segment slots per rank.
    pub segs_per_rank: u64,
}

impl SegmentGeometry {
    /// Derives the segment geometry from a device geometry and segment size.
    pub fn new(channels: u32, ranks_per_channel: u32, rank_bytes: u64, segment_bytes: u64) -> Self {
        SegmentGeometry { channels, ranks_per_channel, segs_per_rank: rank_bytes / segment_bytes }
    }

    /// Total segments in the device.
    pub fn total_segments(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.ranks_per_channel) * self.segs_per_rank
    }

    /// Decomposes a DSN.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the DSN is out of range.
    pub fn location(&self, dsn: Dsn) -> SegmentLocation {
        debug_assert!(dsn.0 < self.total_segments(), "DSN out of range");
        let channel = (dsn.0 % u64::from(self.channels)) as u32;
        let linear = dsn.0 / u64::from(self.channels);
        let within = linear % self.segs_per_rank;
        let rank = (linear / self.segs_per_rank) as u32;
        SegmentLocation { channel, rank, within }
    }

    /// Recomposes a DSN.
    pub fn dsn(&self, loc: SegmentLocation) -> Dsn {
        Dsn((u64::from(loc.rank) * self.segs_per_rank + loc.within) * u64::from(self.channels)
            + u64::from(loc.channel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> SegmentGeometry {
        // 1 TB device: 4 channels, 8 ranks, 32 GiB ranks, 2 MiB segments.
        SegmentGeometry::new(4, 8, 32 << 30, 2 << 20)
    }

    #[test]
    fn totals() {
        let g = geo();
        assert_eq!(g.segs_per_rank, 16 * 1024);
        assert_eq!(g.total_segments(), (1u64 << 40) / (2 << 20));
    }

    #[test]
    fn dsn_location_round_trip() {
        let g = geo();
        for dsn in [0u64, 1, 3, 4, 12345, g.total_segments() - 1] {
            let loc = g.location(Dsn(dsn));
            assert_eq!(g.dsn(loc), Dsn(dsn));
        }
    }

    #[test]
    fn consecutive_dsns_rotate_channels() {
        let g = geo();
        for d in 0..8u64 {
            assert_eq!(g.location(Dsn(d)).channel, (d % 4) as u32);
            assert_eq!(g.location(Dsn(d)).rank, 0, "early DSNs stay in rank 0");
        }
    }

    #[test]
    fn rank_bits_are_most_significant() {
        let g = geo();
        let last = g.location(Dsn(g.total_segments() - 1));
        assert_eq!(last.rank, 7);
        let first_of_last_rank = g.dsn(SegmentLocation { channel: 0, rank: 7, within: 0 });
        assert_eq!(first_of_last_rank.0, 7 * g.segs_per_rank * 4);
    }

    #[test]
    fn hsn_pack_is_injective_for_distinct_fields() {
        let a = Hsn { host: HostId(1), au: AuId(2), au_offset: 3 };
        let b = Hsn { host: HostId(1), au: AuId(2), au_offset: 4 };
        let c = Hsn { host: HostId(2), au: AuId(2), au_offset: 3 };
        assert_ne!(a.pack(), b.pack());
        assert_ne!(a.pack(), c.pack());
        assert_eq!(a.pack(), Hsn { ..a }.pack());
    }

    #[test]
    fn hpa_segment_math() {
        let seg = 2u64 << 20;
        let a = HostPhysAddr::new(5 * seg + 1234);
        assert_eq!(a.segment_index(seg), 5);
        assert_eq!(a.segment_offset(seg), 1234);
    }

    #[test]
    fn display_formats() {
        assert_eq!(HostPhysAddr::new(0x10).to_string(), "hpa:0x10");
        assert_eq!(HostId(3).to_string(), "host3");
        assert_eq!(AuId(7).to_string(), "au7");
        assert_eq!(Dsn(9).to_string(), "dsn9");
        let h = Hsn { host: HostId(1), au: AuId(2), au_offset: 3 };
        assert_eq!(h.to_string(), "host1/au2/3");
    }
}
