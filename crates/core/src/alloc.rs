//! Segment allocation (paper §4.3 "Balancing Segment Allocation").
//!
//! Every allocation unit takes an equal number of segments from each
//! channel, so a VM always sees the full channel-level parallelism of the
//! device. Within a channel, the *most utilized* active rank's free queue
//! has priority, which packs data into few ranks and keeps the rest
//! drainable for power-down.

use std::collections::{BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::addr::{Dsn, SegmentGeometry, SegmentLocation};
use crate::error::DtlError;

/// Free/allocated segment bookkeeping per (channel, rank).
///
/// # Examples
///
/// ```
/// use dtl_core::{SegmentAllocator, SegmentGeometry};
///
/// let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 };
/// let mut alloc = SegmentAllocator::new(geo);
/// let au = alloc.allocate_au(8)?;           // 4 segments per channel
/// assert_eq!(au.len(), 8);
/// assert_eq!(alloc.free_active_total(), 120);
/// alloc.free_segments(&au)?;
/// # Ok::<(), dtl_core::DtlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentAllocator {
    geo: SegmentGeometry,
    /// Free within-rank slots, per `[channel][rank]`.
    free: Vec<Vec<VecDeque<u64>>>,
    /// Allocated within-rank slots, per `[channel][rank]` (ordered for
    /// deterministic iteration).
    allocated: Vec<Vec<BTreeSet<u64>>>,
    /// Rank availability for allocation: `false` while powered down.
    active: Vec<Vec<bool>>,
}

impl SegmentAllocator {
    /// A fully free allocator with all ranks active.
    pub fn new(geo: SegmentGeometry) -> Self {
        let mut free = Vec::with_capacity(geo.channels as usize);
        let mut allocated = Vec::with_capacity(geo.channels as usize);
        let mut active = Vec::with_capacity(geo.channels as usize);
        for _ in 0..geo.channels {
            let mut fr = Vec::with_capacity(geo.ranks_per_channel as usize);
            let mut al = Vec::with_capacity(geo.ranks_per_channel as usize);
            let mut ac = Vec::with_capacity(geo.ranks_per_channel as usize);
            for _ in 0..geo.ranks_per_channel {
                fr.push((0..geo.segs_per_rank).collect::<VecDeque<u64>>());
                al.push(BTreeSet::new());
                ac.push(true);
            }
            free.push(fr);
            allocated.push(al);
            active.push(ac);
        }
        SegmentAllocator { geo, free, allocated, active }
    }

    /// The segment geometry.
    pub fn geometry(&self) -> SegmentGeometry {
        self.geo
    }

    /// Marks a rank available/unavailable for allocation (power-down state).
    pub fn set_rank_active(&mut self, channel: u32, rank: u32, active: bool) {
        self.active[channel as usize][rank as usize] = active;
    }

    /// Whether a rank is available for allocation.
    pub fn is_rank_active(&self, channel: u32, rank: u32) -> bool {
        self.active[channel as usize][rank as usize]
    }

    /// Allocated segment count in a rank.
    pub fn allocated_in_rank(&self, channel: u32, rank: u32) -> u64 {
        self.allocated[channel as usize][rank as usize].len() as u64
    }

    /// Free segment count in a rank.
    pub fn free_in_rank(&self, channel: u32, rank: u32) -> u64 {
        self.free[channel as usize][rank as usize].len() as u64
    }

    /// Free segments in the *active* ranks of a channel.
    pub fn free_in_channel_active(&self, channel: u32) -> u64 {
        (0..self.geo.ranks_per_channel)
            .filter(|r| self.is_rank_active(channel, *r))
            .map(|r| self.free_in_rank(channel, r))
            .sum()
    }

    /// Total free segments over all active ranks.
    pub fn free_active_total(&self) -> u64 {
        (0..self.geo.channels).map(|c| self.free_in_channel_active(c)).sum()
    }

    /// Iterates the allocated within-rank slots of a rank (ascending).
    pub fn allocated_slots(&self, channel: u32, rank: u32) -> impl Iterator<Item = u64> + '_ {
        self.allocated[channel as usize][rank as usize].iter().copied()
    }

    /// The active rank with the fewest allocated segments in a channel
    /// (the power-down victim choice of §3.3), optionally excluding ranks.
    pub fn least_allocated_active_rank(&self, channel: u32, exclude: &[u32]) -> Option<u32> {
        (0..self.geo.ranks_per_channel)
            .filter(|r| self.is_rank_active(channel, *r) && !exclude.contains(r))
            .min_by_key(|r| (self.allocated_in_rank(channel, *r), *r))
    }

    /// Allocates one AU of `segments_per_au` segments: equal share per
    /// channel, preferring the most-utilized active rank with free space.
    /// Returned DSNs are ordered so consecutive AU offsets rotate channels.
    ///
    /// # Errors
    ///
    /// [`DtlError::OutOfCapacity`] if any channel's active ranks cannot
    /// supply its share (the caller should wake a rank group and retry).
    pub fn allocate_au(&mut self, segments_per_au: u64) -> Result<Vec<Dsn>, DtlError> {
        let channels = u64::from(self.geo.channels);
        debug_assert_eq!(segments_per_au % channels, 0, "validated by DtlConfig");
        let per_channel = segments_per_au / channels;
        // Feasibility check before mutating anything.
        for c in 0..self.geo.channels {
            if self.free_in_channel_active(c) < per_channel {
                return Err(DtlError::OutOfCapacity {
                    requested: segments_per_au, // in segments
                    free: self.free_active_total(),
                });
            }
        }
        let mut per_channel_slots: Vec<Vec<SegmentLocation>> =
            Vec::with_capacity(self.geo.channels as usize);
        for c in 0..self.geo.channels {
            let mut slots = Vec::with_capacity(per_channel as usize);
            while (slots.len() as u64) < per_channel {
                let rank =
                    self.most_utilized_active_rank_with_free(c).expect("feasibility checked above");
                let within = self.free[c as usize][rank as usize]
                    .pop_front()
                    .expect("rank selected with free space");
                self.allocated[c as usize][rank as usize].insert(within);
                slots.push(SegmentLocation { channel: c, rank, within });
            }
            per_channel_slots.push(slots);
        }
        // Interleave: AU offset k lives on channel k % C.
        let mut dsns = Vec::with_capacity(segments_per_au as usize);
        for k in 0..segments_per_au {
            let c = (k % channels) as usize;
            let slot = per_channel_slots[c][(k / channels) as usize];
            dsns.push(self.geo.dsn(slot));
        }
        Ok(dsns)
    }

    fn most_utilized_active_rank_with_free(&self, channel: u32) -> Option<u32> {
        (0..self.geo.ranks_per_channel)
            .filter(|r| self.is_rank_active(channel, *r) && self.free_in_rank(channel, *r) > 0)
            .max_by_key(|r| (self.allocated_in_rank(channel, *r), u32::MAX - *r))
    }

    /// Returns segments to the free pool.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] if a segment was not allocated.
    pub fn free_segments(&mut self, dsns: &[Dsn]) -> Result<(), DtlError> {
        for d in dsns {
            let loc = self.geo.location(*d);
            let set = &mut self.allocated[loc.channel as usize][loc.rank as usize];
            if !set.remove(&loc.within) {
                return Err(DtlError::Internal {
                    reason: format!("freeing unallocated segment {d}"),
                });
            }
            self.free[loc.channel as usize][loc.rank as usize].push_back(loc.within);
        }
        Ok(())
    }

    /// Reserves one *specific* free slot (hotness-copy destinations must
    /// be claimed at planning time or a concurrent drain could take them).
    /// Returns `false` if the slot is not currently free.
    pub fn reserve_slot(&mut self, loc: SegmentLocation) -> bool {
        let fq = &mut self.free[loc.channel as usize][loc.rank as usize];
        let Some(pos) = fq.iter().position(|w| *w == loc.within) else {
            return false;
        };
        fq.remove(pos);
        self.allocated[loc.channel as usize][loc.rank as usize].insert(loc.within);
        true
    }

    /// Takes one free slot from a specific rank (migration destination
    /// search). Returns `None` when the rank is full.
    pub fn take_free_in_rank(&mut self, channel: u32, rank: u32) -> Option<SegmentLocation> {
        let within = self.free[channel as usize][rank as usize].pop_front()?;
        self.allocated[channel as usize][rank as usize].insert(within);
        Some(SegmentLocation { channel, rank, within })
    }

    /// Records that a live segment moved from `src` to `dst` (dst must have
    /// been taken via [`SegmentAllocator::take_free_in_rank`]); `src`
    /// becomes free.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] if `src` was not allocated.
    pub fn complete_move(&mut self, src: SegmentLocation) -> Result<(), DtlError> {
        let set = &mut self.allocated[src.channel as usize][src.rank as usize];
        if !set.remove(&src.within) {
            return Err(DtlError::Internal {
                reason: format!("move source {src:?} not allocated"),
            });
        }
        self.free[src.channel as usize][src.rank as usize].push_back(src.within);
        Ok(())
    }

    /// Records a hotness swap between two slots where exactly one side may
    /// be free: allocation status is exchanged.
    pub fn swap_status(&mut self, a: SegmentLocation, b: SegmentLocation) {
        let a_alloc = self.allocated[a.channel as usize][a.rank as usize].contains(&a.within);
        let b_alloc = self.allocated[b.channel as usize][b.rank as usize].contains(&b.within);
        if a_alloc == b_alloc {
            return; // both live or both free: status unchanged
        }
        let (live, free) = if a_alloc { (a, b) } else { (b, a) };
        self.allocated[live.channel as usize][live.rank as usize].remove(&live.within);
        self.free[live.channel as usize][live.rank as usize].push_back(live.within);
        let fq = &mut self.free[free.channel as usize][free.rank as usize];
        if let Some(pos) = fq.iter().position(|w| *w == free.within) {
            fq.remove(pos);
        }
        self.allocated[free.channel as usize][free.rank as usize].insert(free.within);
    }

    /// Whether a slot is currently allocated.
    pub fn is_allocated(&self, loc: SegmentLocation) -> bool {
        self.allocated[loc.channel as usize][loc.rank as usize].contains(&loc.within)
    }

    /// Verifies that free + allocated exactly tile every rank.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] describing the first inconsistency.
    pub fn check_consistency(&self) -> Result<(), DtlError> {
        for c in 0..self.geo.channels as usize {
            for r in 0..self.geo.ranks_per_channel as usize {
                let f = self.free[c][r].len() as u64;
                let a = self.allocated[c][r].len() as u64;
                if f + a != self.geo.segs_per_rank {
                    return Err(DtlError::Internal {
                        reason: format!("ch{c}/rk{r}: {f} free + {a} allocated != rank size"),
                    });
                }
                let mut seen: BTreeSet<u64> = self.allocated[c][r].clone();
                for w in &self.free[c][r] {
                    if !seen.insert(*w) {
                        return Err(DtlError::Internal {
                            reason: format!("ch{c}/rk{r}: slot {w} in both free and allocated"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> SegmentGeometry {
        // 2 channels, 4 ranks, 16 segments per rank = 128 segments.
        SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 }
    }

    #[test]
    fn fresh_allocator_is_all_free() {
        let a = SegmentAllocator::new(geo());
        assert_eq!(a.free_active_total(), 128);
        assert_eq!(a.allocated_in_rank(0, 0), 0);
        a.check_consistency().unwrap();
    }

    #[test]
    fn au_allocation_balances_channels_and_packs_ranks() {
        let mut a = SegmentAllocator::new(geo());
        let dsns = a.allocate_au(8).unwrap();
        assert_eq!(dsns.len(), 8);
        // Equal share per channel.
        let g = geo();
        let per_ch = dsns.iter().map(|d| g.location(*d).channel).fold([0u32; 2], |mut acc, c| {
            acc[c as usize] += 1;
            acc
        });
        assert_eq!(per_ch, [4, 4]);
        // Consecutive offsets rotate channels (DTL channel interleaving).
        for (k, d) in dsns.iter().enumerate() {
            assert_eq!(g.location(*d).channel, (k % 2) as u32);
        }
        // Packing: everything in one rank per channel.
        for d in &dsns {
            assert_eq!(g.location(*d).rank, g.location(dsns[0]).rank);
        }
        a.check_consistency().unwrap();
    }

    #[test]
    fn allocation_prefers_most_utilized_rank() {
        let mut a = SegmentAllocator::new(geo());
        let first = a.allocate_au(8).unwrap();
        let second = a.allocate_au(8).unwrap();
        let g = geo();
        // Both AUs should land in the same (most utilized) rank per channel.
        assert_eq!(g.location(first[0]).rank, g.location(second[0]).rank);
    }

    #[test]
    fn allocation_spills_to_next_rank_when_full() {
        let mut a = SegmentAllocator::new(geo());
        // Each rank holds 16; fill the first rank pair (2ch x 16 = 32 segs
        // = 4 AUs of 8).
        let mut all = Vec::new();
        for _ in 0..4 {
            all.extend(a.allocate_au(8).unwrap());
        }
        let g = geo();
        let first_rank = g.location(all[0]).rank;
        let next = a.allocate_au(8).unwrap();
        assert_ne!(g.location(next[0]).rank, first_rank, "must spill to a new rank");
        a.check_consistency().unwrap();
    }

    #[test]
    fn inactive_ranks_are_skipped() {
        let mut a = SegmentAllocator::new(geo());
        let g = geo();
        let probe = a.allocate_au(8).unwrap();
        let preferred = g.location(probe[0]).rank;
        a.free_segments(&probe).unwrap();
        for c in 0..2 {
            a.set_rank_active(c, preferred, false);
        }
        let dsns = a.allocate_au(8).unwrap();
        for d in &dsns {
            assert_ne!(g.location(*d).rank, preferred);
        }
    }

    #[test]
    fn out_of_capacity_when_active_ranks_full() {
        let mut a = SegmentAllocator::new(geo());
        // Deactivate all but rank 0 in both channels: capacity = 32 segs.
        for c in 0..2 {
            for r in 1..4 {
                a.set_rank_active(c, r, false);
            }
        }
        for _ in 0..4 {
            a.allocate_au(8).unwrap();
        }
        let err = a.allocate_au(8);
        assert!(matches!(err, Err(DtlError::OutOfCapacity { .. })));
        a.check_consistency().unwrap();
    }

    #[test]
    fn free_and_reallocate() {
        let mut a = SegmentAllocator::new(geo());
        let dsns = a.allocate_au(8).unwrap();
        a.free_segments(&dsns).unwrap();
        assert_eq!(a.free_active_total(), 128);
        assert!(a.free_segments(&dsns).is_err(), "double free rejected");
        a.check_consistency().unwrap();
    }

    #[test]
    fn take_free_and_complete_move() {
        let mut a = SegmentAllocator::new(geo());
        let dsns = a.allocate_au(8).unwrap();
        let g = geo();
        let src = g.location(dsns[0]);
        let dst = a.take_free_in_rank(src.channel, (src.rank + 1) % 4).unwrap();
        assert!(a.is_allocated(dst));
        a.complete_move(src).unwrap();
        assert!(!a.is_allocated(src));
        a.check_consistency().unwrap();
    }

    #[test]
    fn swap_status_exchanges_one_live_one_free() {
        let mut a = SegmentAllocator::new(geo());
        let dsns = a.allocate_au(8).unwrap();
        let g = geo();
        let live = g.location(dsns[0]);
        let free = SegmentLocation { channel: live.channel, rank: 3, within: 5 };
        assert!(!a.is_allocated(free));
        a.swap_status(live, free);
        assert!(!a.is_allocated(live));
        assert!(a.is_allocated(free));
        a.check_consistency().unwrap();
    }

    #[test]
    fn swap_status_noop_when_both_live() {
        let mut a = SegmentAllocator::new(geo());
        let dsns = a.allocate_au(8).unwrap();
        let g = geo();
        let x = g.location(dsns[0]);
        let y = g.location(dsns[2]);
        a.swap_status(x, y);
        assert!(a.is_allocated(x) && a.is_allocated(y));
        a.check_consistency().unwrap();
    }

    #[test]
    fn free_list_exhaustion_and_recovery() {
        let mut a = SegmentAllocator::new(geo());
        // 128 segments total = 16 AUs of 8; drain the free lists completely.
        let mut aus = Vec::new();
        for _ in 0..16 {
            aus.push(a.allocate_au(8).unwrap());
        }
        assert_eq!(a.free_active_total(), 0);
        a.check_consistency().unwrap();
        // The 17th must fail without mutating anything, reporting the
        // requested size and the (zero) free pool.
        match a.allocate_au(8) {
            Err(DtlError::OutOfCapacity { requested, free }) => {
                assert_eq!(requested, 8);
                assert_eq!(free, 0);
            }
            other => panic!("expected OutOfCapacity, got {other:?}"),
        }
        a.check_consistency().unwrap();
        // take_free_in_rank is the other allocation path; it must also
        // report exhaustion (None) on every rank.
        for c in 0..2 {
            for r in 0..4 {
                assert!(a.take_free_in_rank(c, r).is_none());
            }
        }
        // Freeing one AU restores exactly its capacity and allocation works
        // again — exhaustion must not corrupt the free lists.
        a.free_segments(&aus.pop().unwrap()).unwrap();
        assert_eq!(a.free_active_total(), 8);
        let again = a.allocate_au(8).unwrap();
        assert_eq!(again.len(), 8);
        assert_eq!(a.free_active_total(), 0);
        a.check_consistency().unwrap();
    }

    #[test]
    fn partial_channel_exhaustion_fails_whole_au() {
        let mut a = SegmentAllocator::new(geo());
        // Deactivate every rank of channel 1 except one, then fill it:
        // channel 0 still has plenty, but AU allocation takes an equal share
        // per channel, so the AU must fail as a unit with nothing mutated.
        for r in 1..4 {
            a.set_rank_active(1, r, false);
        }
        for _ in 0..4 {
            a.allocate_au(8).unwrap(); // 4 segs/channel each: ch1 rank full
        }
        assert_eq!(a.free_in_channel_active(1), 0);
        let before_ch0 = a.free_in_channel_active(0);
        assert!(matches!(a.allocate_au(8), Err(DtlError::OutOfCapacity { .. })));
        assert_eq!(a.free_in_channel_active(0), before_ch0, "failed alloc must not leak");
        a.check_consistency().unwrap();
    }

    #[test]
    fn least_allocated_victim_selection() {
        let mut a = SegmentAllocator::new(geo());
        let _ = a.allocate_au(8).unwrap();
        let g = geo();
        // The preferred rank now has 4 allocated per channel; victim must be
        // a different (empty) rank.
        let packed = g.location(a.allocate_au(8).unwrap()[0]).rank;
        let victim = a.least_allocated_active_rank(0, &[]).unwrap();
        assert_ne!(victim, packed);
        assert_eq!(a.allocated_in_rank(0, victim), 0);
        // Excluding it picks another.
        let v2 = a.least_allocated_active_rank(0, &[victim]).unwrap();
        assert_ne!(v2, victim);
    }
}
