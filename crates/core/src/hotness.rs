//! Hotness-aware self-refresh (paper §3.4, Figure 8).
//!
//! Per channel, the engine cycles through four phases:
//!
//! 1. **Sampling** — count per-rank accesses over a 0.5 ms window and pick
//!    the least-accessed active rank as the *victim*;
//! 2. **Planning** — maintain the *migration table* (one entry per segment
//!    slot: access bit + planned location). Accesses to segments whose
//!    planned location is in the victim rank trigger CLOCK-style swaps via
//!    the target segment pointer (TSP), and reset the idle timer. When the
//!    *hypothetical* victim rank stays untouched for the profiling
//!    threshold (50 ms), the plan is frozen;
//! 3. **Migrating** — the device executes the planned swaps;
//! 4. **Idle** — the victim rank sits in self-refresh until an access wakes
//!    it, which restarts sampling.

use dtl_dram::Picos;
use dtl_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use crate::addr::{SegmentGeometry, SegmentLocation};

/// Tunables of the hotness engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotnessParams {
    /// Victim-selection sampling window (paper: 0.5 ms).
    pub window: Picos,
    /// Idle threshold of the hypothetical victim before migrating
    /// (paper: 50 ms).
    pub threshold: Picos,
    /// Maximum migration-table entries the TSP scans per search before the
    /// 40 ns timeout fires (roughly one entry per controller cycle).
    pub tsp_max_steps: u32,
}

impl HotnessParams {
    /// The paper's parameters.
    pub fn paper() -> Self {
        HotnessParams {
            window: Picos::from_us(500),
            threshold: Picos::from_ms(50),
            tsp_max_steps: 60,
        }
    }
}

/// Phase of one channel's hotness state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotnessPhase {
    /// Counting per-rank accesses to choose a victim.
    Sampling,
    /// Victim chosen; migration table live; waiting for the idle threshold.
    Planning,
    /// Swap jobs handed to the migration engine.
    Migrating,
    /// Victim rank in self-refresh.
    Idle,
}

/// A frozen migration plan for one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotnessPlan {
    /// The channel this plan belongs to.
    pub channel: u32,
    /// The victim rank that will enter self-refresh.
    pub victim: u32,
    /// Segment swaps (victim slot, target slot) to execute.
    pub swaps: Vec<(SegmentLocation, SegmentLocation)>,
}

/// Counters of the engine's activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotnessStats {
    /// Swaps planned in migration tables (including later undone ones).
    pub swaps_planned: u64,
    /// Fig. 8(c) restores (planned-cold segments that turned hot).
    pub restores: u64,
    /// TSP searches that hit the timeout.
    pub tsp_timeouts: u64,
    /// Plans frozen and handed out for migration.
    pub plans_frozen: u64,
    /// Self-refresh entries commanded.
    pub sr_entries: u64,
    /// Self-refresh exits observed.
    pub sr_exits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    access: bool,
    planned: (u32, u64), // (rank, within)
}

#[derive(Debug, Clone)]
struct ChannelState {
    phase: HotnessPhase,
    /// Migration table: `[rank][within]`.
    table: Vec<Vec<Entry>>,
    /// Per-rank access counts in the current sampling window.
    counts: Vec<u64>,
    window_start: Picos,
    victim: Option<u32>,
    /// Last access to the hypothetical victim rank.
    last_victim_touch: Picos,
    /// TSP position per rank.
    tsp: Vec<u64>,
    /// Round-robin target rank pointer.
    target: u32,
    /// Rank currently in self-refresh.
    sr_rank: Option<u32>,
}

impl ChannelState {
    fn new(ranks: u32, segs_per_rank: u64) -> Self {
        let table = (0..ranks)
            .map(|r| (0..segs_per_rank).map(|w| Entry { access: false, planned: (r, w) }).collect())
            .collect();
        ChannelState {
            phase: HotnessPhase::Sampling,
            table,
            counts: vec![0; ranks as usize],
            window_start: Picos::ZERO,
            victim: None,
            last_victim_touch: Picos::ZERO,
            tsp: vec![0; ranks as usize],
            target: 0,
            sr_rank: None,
        }
    }

    fn reset_table(&mut self) {
        for (r, rank_entries) in self.table.iter_mut().enumerate() {
            for (w, e) in rank_entries.iter_mut().enumerate() {
                e.access = false;
                e.planned = (r as u32, w as u64);
            }
        }
    }
}

/// The hotness-aware self-refresh engine (all channels).
///
/// # Examples
///
/// ```
/// use dtl_core::{HotnessEngine, HotnessParams, HotnessPhase, SegmentGeometry};
/// use dtl_dram::Picos;
///
/// let geo = SegmentGeometry { channels: 1, ranks_per_channel: 4, segs_per_rank: 8 };
/// let mut eng = HotnessEngine::new(geo, HotnessParams::paper());
/// // After the sampling window, a victim rank is selected.
/// let plans = eng.pump(Picos::from_ms(1), |_, _| true);
/// assert!(plans.is_empty());
/// assert_eq!(eng.phase(0), HotnessPhase::Planning);
/// assert!(eng.victim(0).is_some());
/// ```
#[derive(Debug)]
pub struct HotnessEngine {
    geo: SegmentGeometry,
    params: HotnessParams,
    channels: Vec<ChannelState>,
    stats: HotnessStats,
    telemetry: Telemetry,
}

impl HotnessEngine {
    /// A fresh engine, sampling from time zero.
    pub fn new(geo: SegmentGeometry, params: HotnessParams) -> Self {
        HotnessEngine {
            geo,
            params,
            channels: (0..geo.channels)
                .map(|_| ChannelState::new(geo.ranks_per_channel, geo.segs_per_rank))
                .collect(),
            stats: HotnessStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; every TSP search emits a `TspAdvance`
    /// event recording whether it found a cold entry or timed out.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Statistics so far.
    pub fn stats(&self) -> HotnessStats {
        self.stats
    }

    /// Current phase of a channel.
    pub fn phase(&self, channel: u32) -> HotnessPhase {
        self.channels[channel as usize].phase
    }

    /// The victim rank of a channel, if one is selected.
    pub fn victim(&self, channel: u32) -> Option<u32> {
        self.channels[channel as usize].victim
    }

    /// The rank currently in self-refresh on a channel.
    pub fn sr_rank(&self, channel: u32) -> Option<u32> {
        self.channels[channel as usize].sr_rank
    }

    /// Feeds one foreground access at its physical location.
    pub fn on_access(&mut self, loc: SegmentLocation, now: Picos) {
        let params = self.params;
        let ch = &mut self.channels[loc.channel as usize];
        ch.counts[loc.rank as usize] += 1;
        if ch.phase != HotnessPhase::Planning {
            return;
        }
        let victim = ch.victim.expect("planning implies a victim");
        let entry = ch.table[loc.rank as usize][loc.within as usize];
        let planned_in_victim = entry.planned.0 == victim;
        if !planned_in_victim {
            ch.table[loc.rank as usize][loc.within as usize].access = true;
            return;
        }
        // The hypothetical victim was touched: reset the idle timer.
        ch.last_victim_touch = now;
        ch.table[loc.rank as usize][loc.within as usize].access = true;
        let ctx = (&self.telemetry, loc.channel, now);
        if loc.rank != victim {
            // Fig. 8(c): a segment planned INTO the victim turned hot.
            // Restore both sides, then re-pair the victim slot with a new
            // cold entry.
            let (vr, vw) = entry.planned;
            debug_assert_eq!(vr, victim);
            let partner = ch.table[vr as usize][vw as usize].planned;
            debug_assert_eq!(partner, (loc.rank, loc.within), "pairing must be symmetric");
            ch.table[loc.rank as usize][loc.within as usize].planned = (loc.rank, loc.within);
            ch.table[vr as usize][vw as usize].planned = (vr, vw);
            self.stats.restores += 1;
            Self::tsp_swap(ch, &self.geo, &params, victim, vw, &mut self.stats, ctx);
        } else {
            // Fig. 8(b): a segment physically in the victim rank is hot.
            // Only meaningful if it is still planned to stay (identity).
            Self::tsp_swap(ch, &self.geo, &params, victim, loc.within, &mut self.stats, ctx);
        }
    }

    /// CLOCK search: find a cold entry in the target ranks and swap its
    /// planned location with victim slot `vw`. `ctx` carries the telemetry
    /// handle, the channel index and the current time for event emission.
    fn tsp_swap(
        ch: &mut ChannelState,
        geo: &SegmentGeometry,
        params: &HotnessParams,
        victim: u32,
        vw: u64,
        stats: &mut HotnessStats,
        ctx: (&Telemetry, u32, Picos),
    ) {
        let (telemetry, channel, now) = ctx;
        let ranks = geo.ranks_per_channel;
        let mut steps = 0u32;
        // Ensure the round-robin pointer is a valid target.
        if ch.target == victim {
            ch.target = (ch.target + 1) % ranks;
        }
        loop {
            if steps >= params.tsp_max_steps {
                stats.tsp_timeouts += 1;
                telemetry
                    .emit(now.as_ps(), EventKind::TspAdvance { channel, victim, timeout: true });
                // Timeout: move to the next target rank (round robin).
                ch.target = (ch.target + 1) % ranks;
                if ch.target == victim {
                    ch.target = (ch.target + 1) % ranks;
                }
                return;
            }
            let t = ch.target as usize;
            let pos = ch.tsp[t] % geo.segs_per_rank;
            ch.tsp[t] = (pos + 1) % geo.segs_per_rank;
            steps += 1;
            let e = ch.table[t][pos as usize];
            if e.planned.0 == victim {
                continue; // already claimed by another victim slot
            }
            if e.access {
                ch.table[t][pos as usize].access = false; // CLOCK second chance
                continue;
            }
            // Found a cold entry: exchange planned locations, then move the
            // target pointer round-robin so cold candidates are collected
            // from *all* target ranks (§3.4), not just the nearest one.
            let v_planned = ch.table[victim as usize][vw as usize].planned;
            debug_assert_eq!(v_planned, (victim, vw), "victim slot must be unswapped");
            ch.table[victim as usize][vw as usize].planned = e.planned;
            ch.table[t][pos as usize].planned = (victim, vw);
            stats.swaps_planned += 1;
            telemetry.emit(now.as_ps(), EventKind::TspAdvance { channel, victim, timeout: false });
            ch.target = (ch.target + 1) % ranks;
            if ch.target == victim {
                ch.target = (ch.target + 1) % ranks;
            }
            return;
        }
    }

    /// Advances phase machines. `rank_active(channel, rank)` must return
    /// whether a rank is available (standby and not draining/powered-down).
    /// Returns frozen plans ready for migration.
    pub fn pump<F>(&mut self, now: Picos, rank_active: F) -> Vec<HotnessPlan>
    where
        F: Fn(u32, u32) -> bool,
    {
        let mut plans = Vec::new();
        for c in 0..self.geo.channels {
            let params = self.params;
            let ch = &mut self.channels[c as usize];
            match ch.phase {
                HotnessPhase::Sampling => {
                    if now < ch.window_start + params.window {
                        continue;
                    }
                    // Pick the least-accessed active rank as victim.
                    let victim = (0..self.geo.ranks_per_channel)
                        .filter(|r| rank_active(c, *r) && ch.sr_rank != Some(*r))
                        .min_by_key(|r| (ch.counts[*r as usize], *r));
                    let actives = (0..self.geo.ranks_per_channel)
                        .filter(|r| rank_active(c, *r) && ch.sr_rank != Some(*r))
                        .count();
                    ch.counts.iter_mut().for_each(|x| *x = 0);
                    ch.window_start = now;
                    // Need at least two active ranks: one victim, one target.
                    let Some(victim) = victim else { continue };
                    if actives < 2 {
                        continue;
                    }
                    ch.victim = Some(victim);
                    ch.phase = HotnessPhase::Planning;
                    ch.last_victim_touch = now;
                    ch.target = (victim + 1) % self.geo.ranks_per_channel;
                }
                HotnessPhase::Planning => {
                    let victim = ch.victim.expect("planning implies a victim");
                    if !rank_active(c, victim) {
                        // The victim got drained/powered down underneath us:
                        // abandon and resample.
                        ch.reset_table();
                        ch.victim = None;
                        ch.phase = HotnessPhase::Sampling;
                        ch.window_start = now;
                        continue;
                    }
                    if now < ch.last_victim_touch + params.threshold {
                        continue;
                    }
                    // Freeze the plan.
                    let mut swaps = Vec::new();
                    for vw in 0..self.geo.segs_per_rank {
                        let planned = ch.table[victim as usize][vw as usize].planned;
                        if planned == (victim, vw) {
                            continue;
                        }
                        let v_loc = SegmentLocation { channel: c, rank: victim, within: vw };
                        let t_loc =
                            SegmentLocation { channel: c, rank: planned.0, within: planned.1 };
                        swaps.push((v_loc, t_loc));
                    }
                    ch.phase = HotnessPhase::Migrating;
                    self.stats.plans_frozen += 1;
                    plans.push(HotnessPlan { channel: c, victim, swaps });
                }
                HotnessPhase::Migrating | HotnessPhase::Idle => {}
            }
        }
        plans
    }

    /// The next phase-machine deadline across all channels, for
    /// event-driven callers: a Sampling channel acts at the end of its
    /// window, a Planning channel freezes its plan once the victim has
    /// been idle for the threshold (an access to the victim pushes the
    /// deadline out — re-query after foreground accesses). Migrating and
    /// Idle channels advance only on completion/exit notifications, never
    /// on time, so they contribute nothing. `None` means no pump is needed
    /// until an access or notification arrives.
    pub fn next_deadline(&self) -> Option<Picos> {
        self.channels
            .iter()
            .filter_map(|ch| match ch.phase {
                HotnessPhase::Sampling => Some(ch.window_start + self.params.window),
                HotnessPhase::Planning => Some(ch.last_victim_touch + self.params.threshold),
                HotnessPhase::Migrating | HotnessPhase::Idle => None,
            })
            .min()
    }

    /// Notifies that a channel's planned swaps all completed; the engine
    /// resets the migration table and reports the victim rank to put into
    /// self-refresh.
    pub fn on_plan_migrated(&mut self, channel: u32, now: Picos) -> u32 {
        let ch = &mut self.channels[channel as usize];
        debug_assert_eq!(ch.phase, HotnessPhase::Migrating);
        let victim = ch.victim.take().expect("migrating implies a victim");
        ch.reset_table();
        ch.phase = HotnessPhase::Idle;
        ch.sr_rank = Some(victim);
        ch.window_start = now;
        self.stats.sr_entries += 1;
        victim
    }

    /// Notifies that the self-refresh rank was woken by an access; sampling
    /// restarts.
    pub fn on_sr_exit(&mut self, channel: u32, rank: u32, now: Picos) {
        let ch = &mut self.channels[channel as usize];
        if ch.sr_rank == Some(rank) {
            ch.sr_rank = None;
            ch.phase = HotnessPhase::Sampling;
            ch.window_start = now;
            ch.counts.iter_mut().for_each(|x| *x = 0);
            self.stats.sr_exits += 1;
        }
    }

    /// The planned location of a physical slot (test/diagnostic hook).
    pub fn planned_of(&self, loc: SegmentLocation) -> SegmentLocation {
        let e = &self.channels[loc.channel as usize].table[loc.rank as usize][loc.within as usize];
        SegmentLocation { channel: loc.channel, rank: e.planned.0, within: e.planned.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> SegmentGeometry {
        SegmentGeometry { channels: 1, ranks_per_channel: 4, segs_per_rank: 8 }
    }

    fn params() -> HotnessParams {
        HotnessParams {
            window: Picos::from_us(100),
            threshold: Picos::from_us(1000),
            tsp_max_steps: 16,
        }
    }

    fn loc(rank: u32, within: u64) -> SegmentLocation {
        SegmentLocation { channel: 0, rank, within }
    }

    /// Drives the engine into Planning with rank `victim` as victim by
    /// making all other ranks hot during sampling.
    fn enter_planning(eng: &mut HotnessEngine, victim: u32) -> Picos {
        let t0 = Picos::from_us(10);
        for r in 0..4u32 {
            if r != victim {
                for w in 0..4 {
                    eng.on_access(loc(r, w), t0);
                }
            }
        }
        let t1 = Picos::from_us(150);
        let plans = eng.pump(t1, |_, _| true);
        assert!(plans.is_empty());
        assert_eq!(eng.phase(0), HotnessPhase::Planning);
        assert_eq!(eng.victim(0), Some(victim));
        t1
    }

    #[test]
    fn sampling_selects_least_accessed_rank() {
        let mut eng = HotnessEngine::new(geo(), params());
        enter_planning(&mut eng, 0);
        // rank 0 untouched -> victim 0 (ties break to lowest index).
        assert_eq!(eng.victim(0), Some(0));
    }

    #[test]
    fn next_deadline_follows_phase_machine() {
        let mut eng = HotnessEngine::new(geo(), params());
        // Sampling from t=0: deadline is the end of the window.
        assert_eq!(eng.next_deadline(), Some(params().window));
        let t1 = enter_planning(&mut eng, 0);
        // Planning: victim idle threshold from the moment planning began.
        assert_eq!(eng.next_deadline(), Some(t1 + params().threshold));
        // Touching the victim pushes the deadline out.
        let touch = t1 + Picos::from_us(40);
        eng.on_access(loc(0, 0), touch);
        assert_eq!(eng.next_deadline(), Some(touch + params().threshold));
        // Pumping at the deadline freezes the plan; Migrating has no
        // time-based deadline (it advances on completion notifications).
        let freeze = touch + params().threshold;
        let plans = eng.pump(freeze, |_, _| true);
        assert_eq!(plans.len(), 1);
        assert_eq!(eng.phase(0), HotnessPhase::Migrating);
        assert_eq!(eng.next_deadline(), None);
        // Idle after migration likewise waits on the self-refresh exit.
        eng.on_plan_migrated(0, freeze);
        assert_eq!(eng.phase(0), HotnessPhase::Idle);
        assert_eq!(eng.next_deadline(), None);
        // The SR exit restarts sampling and with it the window deadline.
        let exit = freeze + Picos::from_us(500);
        eng.on_sr_exit(0, 0, exit);
        assert_eq!(eng.next_deadline(), Some(exit + params().window));
    }

    #[test]
    fn idle_victim_freezes_empty_plan_after_threshold() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        // No victim touches: the threshold passes.
        let plans = eng.pump(t1 + Picos::from_us(1100), |_, _| true);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].victim, 0);
        assert!(plans[0].swaps.is_empty(), "nothing was hot in the victim");
        assert_eq!(eng.phase(0), HotnessPhase::Migrating);
        let v = eng.on_plan_migrated(0, t1 + Picos::from_us(1200));
        assert_eq!(v, 0);
        assert_eq!(eng.phase(0), HotnessPhase::Idle);
        assert_eq!(eng.sr_rank(0), Some(0));
        assert_eq!(eng.stats().sr_entries, 1);
    }

    #[test]
    fn hot_victim_segment_is_swapped_out_fig8b() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        // Access victim slot 3: it must be planned out of the victim.
        eng.on_access(loc(0, 3), t1 + Picos::from_us(10));
        let p = eng.planned_of(loc(0, 3));
        assert_ne!(p.rank, 0, "hot victim segment must leave the victim");
        // And its partner must be planned into the victim.
        let partner = eng.planned_of(p);
        assert_eq!((partner.rank, partner.within), (0, 3));
        assert_eq!(eng.stats().swaps_planned, 1);
    }

    #[test]
    fn victim_touch_resets_idle_timer() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        // Touch the victim at t1+900us; threshold (1 ms) measured from there.
        eng.on_access(loc(0, 1), t1 + Picos::from_us(900));
        let plans = eng.pump(t1 + Picos::from_us(1100), |_, _| true);
        assert!(plans.is_empty(), "timer was reset");
        let plans = eng.pump(t1 + Picos::from_us(2000), |_, _| true);
        assert_eq!(plans.len(), 1);
    }

    #[test]
    fn planned_cold_segment_turning_hot_is_restored_fig8c() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        // Plan: victim slot 3 swaps with some target entry.
        eng.on_access(loc(0, 3), t1 + Picos::from_us(10));
        let cold = eng.planned_of(loc(0, 3)); // the target slot planned into victim
                                              // That target slot gets accessed: Fig 8c restore + re-pair.
        eng.on_access(cold, t1 + Picos::from_us(20));
        assert_eq!(eng.stats().restores, 1);
        let restored = eng.planned_of(cold);
        assert_eq!(restored, cold, "hot segment restored to identity");
        // Victim slot 3 must be re-paired with a different cold entry.
        let p2 = eng.planned_of(loc(0, 3));
        assert_ne!(p2.rank, 0);
        assert_ne!(p2, cold);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        // All rank-1 entries got their access bits set during sampling...
        // (sampling set counts, not bits — bits are only set in Planning).
        // Heat rank 1 entries now, in Planning:
        for w in 0..8 {
            eng.on_access(loc(1, w), t1 + Picos::from_us(5));
        }
        // Swap search starts at target = victim+1 = rank 1; all its entries
        // have access=1, so CLOCK clears them (second chance), wraps, and
        // takes the first now-cold entry.
        eng.on_access(loc(0, 0), t1 + Picos::from_us(10));
        let p = eng.planned_of(loc(0, 0));
        assert_eq!((p.rank, p.within), (1, 0), "second chance: wrap then take entry 0");
        assert_eq!(eng.planned_of(p), loc(0, 0), "pairing is symmetric");
        assert_eq!(eng.stats().swaps_planned, 1);
    }

    #[test]
    fn tsp_timeout_advances_target_rank() {
        let mut eng = HotnessEngine::new(geo(), HotnessParams { tsp_max_steps: 4, ..params() });
        let t1 = enter_planning(&mut eng, 0);
        // Heat all of rank 1 so the 4-step search times out inside it.
        for w in 0..8 {
            eng.on_access(loc(1, w), t1 + Picos::from_us(5));
        }
        eng.on_access(loc(0, 0), t1 + Picos::from_us(10));
        assert!(eng.stats().tsp_timeouts >= 1);
        // No swap happened for this access.
        assert_eq!(eng.planned_of(loc(0, 0)), loc(0, 0));
        // The next search starts in the advanced target rank and succeeds.
        eng.on_access(loc(0, 0), t1 + Picos::from_us(20));
        assert_ne!(eng.planned_of(loc(0, 0)).rank, 0);
    }

    #[test]
    fn full_cycle_with_sr_exit() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        eng.on_access(loc(0, 3), t1 + Picos::from_us(10));
        let plans = eng.pump(t1 + Picos::from_us(1200), |_, _| true);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].swaps.len(), 1);
        let victim = eng.on_plan_migrated(0, t1 + Picos::from_us(1300));
        assert_eq!(eng.sr_rank(0), Some(victim));
        // Table reset after migration.
        assert_eq!(eng.planned_of(loc(0, 3)), loc(0, 3));
        // Wake it.
        eng.on_sr_exit(0, victim, t1 + Picos::from_us(5000));
        assert_eq!(eng.sr_rank(0), None);
        assert_eq!(eng.phase(0), HotnessPhase::Sampling);
        assert_eq!(eng.stats().sr_exits, 1);
    }

    #[test]
    fn sr_exit_of_other_rank_ignored() {
        let mut eng = HotnessEngine::new(geo(), params());
        eng.on_sr_exit(0, 2, Picos::from_us(10));
        assert_eq!(eng.stats().sr_exits, 0);
    }

    #[test]
    fn inactive_victim_abandons_planning() {
        let mut eng = HotnessEngine::new(geo(), params());
        let t1 = enter_planning(&mut eng, 0);
        eng.on_access(loc(0, 3), t1 + Picos::from_us(10));
        // Rank 0 becomes inactive (drained by power-down).
        let plans = eng.pump(t1 + Picos::from_us(2000), |_, r| r != 0);
        assert!(plans.is_empty());
        assert_eq!(eng.phase(0), HotnessPhase::Sampling);
        assert_eq!(eng.planned_of(loc(0, 3)), loc(0, 3), "table reset");
    }

    #[test]
    fn channels_run_independent_state_machines() {
        let geo2 = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 8 };
        let mut eng = HotnessEngine::new(geo2, params());
        // Heat channel 0's ranks 1-3 during sampling; leave channel 1
        // completely idle.
        for r in 1..4u32 {
            for w in 0..4 {
                eng.on_access(
                    SegmentLocation { channel: 0, rank: r, within: w },
                    Picos::from_us(10),
                );
            }
        }
        let plans = eng.pump(Picos::from_us(150), |_, _| true);
        assert!(plans.is_empty());
        assert_eq!(eng.phase(0), HotnessPhase::Planning);
        assert_eq!(eng.phase(1), HotnessPhase::Planning);
        assert_eq!(eng.victim(0), Some(0), "least accessed on channel 0");
        assert_eq!(eng.victim(1), Some(0), "idle channel ties to rank 0");
        // Channel 0's victim gets touched (timer resets); channel 1's plan
        // freezes alone.
        eng.on_access(SegmentLocation { channel: 0, rank: 0, within: 1 }, Picos::from_us(1000));
        let plans = eng.pump(Picos::from_us(1200), |_, _| true);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].channel, 1);
        assert_eq!(eng.phase(0), HotnessPhase::Planning, "channel 0 still waiting");
        assert_eq!(eng.phase(1), HotnessPhase::Migrating);
        // Completing channel 1's plan parks its victim without touching
        // channel 0.
        let v = eng.on_plan_migrated(1, Picos::from_us(1300));
        assert_eq!(eng.sr_rank(1), Some(v));
        assert_eq!(eng.sr_rank(0), None);
    }

    #[test]
    fn needs_two_active_ranks_to_plan() {
        let mut eng = HotnessEngine::new(geo(), params());
        let plans = eng.pump(Picos::from_us(200), |_, r| r == 3);
        assert!(plans.is_empty());
        assert_eq!(eng.phase(0), HotnessPhase::Sampling);
    }
}
