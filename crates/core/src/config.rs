//! DTL configuration and defaults.

use dtl_dram::{DramConfig, Picos, PowerPolicyKind};
use serde::{Deserialize, Serialize};

use crate::error::DtlError;

/// Configuration of the DRAM Translation Layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtlConfig {
    /// Translation granularity (paper default: 2 MiB).
    pub segment_bytes: u64,
    /// Allocation unit: minimum memory granted to a VM (paper: 2 GiB).
    pub au_bytes: u64,
    /// Hosts the device can serve (paper sizing study: 16).
    pub max_hosts: u16,
    /// L1 segment mapping cache entries (fully associative; paper: 64).
    pub smc_l1_entries: usize,
    /// L2 segment mapping cache total entries (paper: 1024).
    pub smc_l2_entries: usize,
    /// L2 SMC associativity (paper: 4).
    pub smc_l2_ways: usize,
    /// Hotness profiling window for victim-rank selection (paper: 0.5 ms).
    pub profile_window: Picos,
    /// Idle threshold of the hypothetical victim rank before migration
    /// starts (paper: 50 ms).
    pub profile_threshold: Picos,
    /// CLOCK target-segment-pointer search timeout (paper: 40 ns).
    pub tsp_timeout: Picos,
    /// Migration abort retries before the job is re-queued (paper: 3).
    pub migration_retry_limit: u32,
    /// Controller clock in GHz (paper: 1.5 GHz).
    pub controller_ghz: f64,
    /// Rank power-management policy (default: the paper's fixed-threshold
    /// scheme, bit-compatible with the pre-policy engine).
    pub power_policy: PowerPolicyKind,
}

impl Default for DtlConfig {
    fn default() -> Self {
        DtlConfig {
            segment_bytes: 2 << 20,
            au_bytes: 2 << 30,
            max_hosts: 16,
            smc_l1_entries: 64,
            smc_l2_entries: 1024,
            smc_l2_ways: 4,
            profile_window: Picos::from_us(500),
            profile_threshold: Picos::from_ms(50),
            tsp_timeout: Picos::from_ns(40),
            migration_retry_limit: 3,
            controller_ghz: 1.5,
            power_policy: PowerPolicyKind::FixedThreshold,
        }
    }
}

impl DtlConfig {
    /// The paper's configuration (all defaults).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A scaled configuration for fast tests: 256 KiB segments, 8 MiB AUs,
    /// and microsecond-scale hotness thresholds.
    pub fn tiny() -> Self {
        DtlConfig {
            segment_bytes: 256 << 10,
            au_bytes: 8 << 20,
            max_hosts: 4,
            smc_l1_entries: 8,
            smc_l2_entries: 64,
            smc_l2_ways: 4,
            profile_window: Picos::from_us(50),
            profile_threshold: Picos::from_us(500),
            tsp_timeout: Picos::from_ns(40),
            migration_retry_limit: 3,
            controller_ghz: 1.5,
            power_policy: PowerPolicyKind::FixedThreshold,
        }
    }

    /// Segments per allocation unit.
    pub fn segments_per_au(&self) -> u64 {
        self.au_bytes / self.segment_bytes
    }

    /// One controller clock period.
    pub fn controller_cycle(&self) -> Picos {
        Picos::from_ns_f64(1.0 / self.controller_ghz)
    }

    /// Validates the configuration on its own and against a DRAM
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DtlError::InvalidConfig`] when sizes are zero, not powers
    /// of two, or inconsistent (AU not a multiple of segment, AU not a
    /// multiple of `channels * segment` so allocations cannot balance, or
    /// the device capacity not a whole number of AUs).
    pub fn validate(&self, dram: &DramConfig) -> Result<(), DtlError> {
        if !self.segment_bytes.is_power_of_two() || self.segment_bytes == 0 {
            return Err(DtlError::InvalidConfig {
                reason: format!("segment_bytes {} must be a power of two", self.segment_bytes),
            });
        }
        if !self.au_bytes.is_power_of_two() || self.au_bytes < self.segment_bytes {
            return Err(DtlError::InvalidConfig {
                reason: "au_bytes must be a power of two and at least one segment".into(),
            });
        }
        let channels = u64::from(dram.geometry.channels);
        if !self.segments_per_au().is_multiple_of(channels) {
            return Err(DtlError::InvalidConfig {
                reason: format!(
                    "an AU of {} segments cannot balance over {channels} channels",
                    self.segments_per_au()
                ),
            });
        }
        if !dram.geometry.rank_bytes().is_multiple_of(self.segment_bytes) {
            return Err(DtlError::InvalidConfig {
                reason: "rank size must be a whole number of segments".into(),
            });
        }
        if self.smc_l1_entries == 0 || self.smc_l2_entries == 0 || self.smc_l2_ways == 0 {
            return Err(DtlError::InvalidConfig { reason: "SMC sizes must be non-zero".into() });
        }
        if !self.smc_l2_entries.is_multiple_of(self.smc_l2_ways) {
            return Err(DtlError::InvalidConfig {
                reason: "L2 SMC entries must divide evenly into ways".into(),
            });
        }
        if self.profile_window == Picos::ZERO || self.profile_threshold == Picos::ZERO {
            return Err(DtlError::InvalidConfig {
                reason: "hotness windows must be non-zero".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = DtlConfig::paper();
        assert_eq!(c.segment_bytes, 2 << 20);
        assert_eq!(c.au_bytes, 2 << 30);
        assert_eq!(c.segments_per_au(), 1024);
        assert_eq!(c.smc_l1_entries, 64);
        assert_eq!(c.smc_l2_entries, 1024);
        assert_eq!(c.profile_threshold, Picos::from_ms(50));
        assert_eq!(c.tsp_timeout, Picos::from_ns(40));
        c.validate(&DramConfig::cxl_1tb_ddr4_2933()).unwrap();
    }

    #[test]
    fn tiny_validates_against_tiny_dram() {
        DtlConfig::tiny().validate(&DramConfig::tiny()).unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let dram = DramConfig::cxl_1tb_ddr4_2933();
        let mut c = DtlConfig::paper();
        c.segment_bytes = 3 << 20;
        assert!(c.validate(&dram).is_err());

        let mut c = DtlConfig::paper();
        c.au_bytes = 1 << 20; // smaller than a segment
        assert!(c.validate(&dram).is_err());

        let mut c = DtlConfig::paper();
        c.smc_l2_ways = 3; // 1024 % 3 != 0
        assert!(c.validate(&dram).is_err());

        let mut c = DtlConfig::paper();
        c.profile_window = Picos::ZERO;
        assert!(c.validate(&dram).is_err());
    }

    #[test]
    fn controller_cycle_is_two_thirds_ns() {
        let c = DtlConfig::paper();
        assert!((c.controller_cycle().as_ns_f64() - 0.667).abs() < 0.01);
    }
}
