//! Command-stream tap: an optional, ordered log of every mapping and
//! power-state change the device commits.
//!
//! External checkers (the `dtl-check` differential oracle) replay this
//! stream into a flat reference model and cross-check the device after
//! every step. The tap is **off by default** and costs one branch per
//! record point when disabled; the access hot path is not tapped at all —
//! per-access information already flows out through
//! [`AccessOutcome`](crate::AccessOutcome).

use dtl_dram::{Picos, PowerEventCause, PowerState};

use crate::addr::{AuId, Dsn, HostId, Hsn};

/// One committed device command, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceCommand {
    /// An allocation unit was created: `dsns[k]` backs AU offset `k`.
    AuCreated {
        /// Owning host.
        host: HostId,
        /// AU id within the host.
        au: AuId,
        /// Backing device segments, in AU-offset order.
        dsns: Vec<Dsn>,
        /// Commit time.
        at: Picos,
    },
    /// An allocation unit was unmapped (dealloc/shrink/rollback).
    AuRemoved {
        /// Owning host.
        host: HostId,
        /// AU id within the host.
        au: AuId,
        /// The device segments it occupied, in AU-offset order.
        dsns: Vec<Dsn>,
        /// Commit time.
        at: Picos,
    },
    /// A drain migration completed: `hsn` moved from `from` to `to`.
    Remap {
        /// The host segment that moved.
        hsn: Hsn,
        /// Previous backing segment (now free).
        from: Dsn,
        /// New backing segment.
        to: Dsn,
        /// Commit time.
        at: Picos,
    },
    /// A hotness migration committed a mapping swap of two device
    /// segments (either side may have been unmapped).
    MappingSwap {
        /// First segment.
        a: Dsn,
        /// Second segment.
        b: Dsn,
        /// Commit time.
        at: Picos,
    },
    /// A rank changed power state (explicit transition or auto-exit).
    PowerTransition {
        /// Channel index.
        channel: u32,
        /// Rank index within the channel.
        rank: u32,
        /// State before.
        from: PowerState,
        /// State after.
        to: PowerState,
        /// What triggered it.
        cause: PowerEventCause,
        /// Completion time of the transition.
        at: Picos,
    },
}

/// The device-owned tap buffer. Disabled taps record nothing.
#[derive(Debug, Default)]
pub struct CommandTap {
    enabled: bool,
    log: Vec<DeviceCommand>,
}

impl CommandTap {
    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Disabling clears the buffer.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.log.clear();
        }
    }

    /// Appends a command (no-op while disabled).
    pub fn record(&mut self, cmd: DeviceCommand) {
        if self.enabled {
            self.log.push(cmd);
        }
    }

    /// Takes every buffered command, oldest first.
    pub fn drain(&mut self) -> Vec<DeviceCommand> {
        std::mem::take(&mut self.log)
    }

    /// Buffered command count.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tap_records_nothing() {
        let mut tap = CommandTap::default();
        tap.record(DeviceCommand::MappingSwap { a: Dsn(0), b: Dsn(1), at: Picos::ZERO });
        assert!(tap.is_empty());
        tap.set_enabled(true);
        tap.record(DeviceCommand::MappingSwap { a: Dsn(0), b: Dsn(1), at: Picos::ZERO });
        assert_eq!(tap.len(), 1);
        assert_eq!(tap.drain().len(), 1);
        assert!(tap.is_empty());
    }

    #[test]
    fn disabling_clears_the_buffer() {
        let mut tap = CommandTap::default();
        tap.set_enabled(true);
        tap.record(DeviceCommand::MappingSwap { a: Dsn(2), b: Dsn(3), at: Picos::ZERO });
        tap.set_enabled(false);
        assert!(tap.is_empty());
        assert!(!tap.enabled());
    }
}
