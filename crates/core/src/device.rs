//! The DTL device façade: a CXL memory device with the DRAM Translation
//! Layer inside its controller.
//!
//! `DtlDevice` composes every mechanism of the paper over a pluggable
//! [`MemoryBackend`]:
//!
//! * HPA→DPA translation through the two-level segment mapping cache and
//!   the three-level table walk (§3.2);
//! * balanced, rank-packing segment allocation at VM granularity (§4.3);
//! * rank-level power-down at VM deallocation (§3.3);
//! * hotness-aware self-refresh (§3.4);
//! * atomic background migration (§4.2).

use std::collections::HashMap;
use std::sync::Arc;

use dtl_dram::{
    AccessKind, Picos, PolicyEngine, PowerEventCause, PowerPolicy, PowerPolicyKind, PowerReport,
    PowerState, Priority,
};
use dtl_telemetry::{EventKind, FaultKindId, HealthStateId, Histogram, MetricsRegistry, Telemetry};
use serde::{Deserialize, Serialize};

use crate::addr::{AuId, Dsn, HostId, HostPhysAddr, Hsn, SegmentGeometry, VmHandle};
use crate::alloc::SegmentAllocator;
use crate::backend::MemoryBackend;
use crate::config::DtlConfig;
use crate::error::DtlError;
use crate::health::{HealthParams, HealthStats, HealthTracker, RankErrorRecord, RankHealth};
use crate::hotness::{HotnessEngine, HotnessParams, HotnessStats};
use crate::migrate::{
    MigrationEngine, MigrationInterrupt, MigrationKind, MigrationStats, WriteRouting,
};
use crate::powerdown::{PowerDownEngine, PowerDownStats, RankPdState};
use crate::smc::{SmcOutcome, SmcStats};
use crate::tables::MappingTables;
use crate::tap::{CommandTap, DeviceCommand};
use crate::translate::Translator;

/// A successful VM allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmAllocation {
    /// Handle for deallocation.
    pub handle: VmHandle,
    /// Allocation units granted, in HPA order.
    pub aus: Vec<AuId>,
    /// Bytes reserved (AU-rounded).
    pub bytes: u64,
}

impl VmAllocation {
    /// The host physical base address of the `i`-th granted AU.
    pub fn hpa_base(&self, i: usize, au_bytes: u64) -> HostPhysAddr {
        HostPhysAddr::new(u64::from(self.aus[i].0) * au_bytes)
    }
}

/// Result of one translated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// The device segment the access was routed to.
    pub dsn: Dsn,
    /// Where the translation was satisfied.
    pub smc: SmcOutcome,
    /// Latency added by the DTL translation path.
    pub translation_latency: Picos,
    /// Estimated completion time at the device (excludes the CXL link).
    pub completion_estimate: Picos,
}

/// Host-visible impact of an injected uncorrectable error
/// ([`DtlDevice::inject_uncorrectable_error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncorrectableReport {
    /// Live (mapped) segments resident in the faulting rank when the error
    /// struck — the blast radius reported to hosts as poisoned.
    pub segments_at_risk: u64,
    /// The rank's health after recording the error.
    pub health: RankHealth,
}

/// Aggregate device statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Translated accesses served.
    pub accesses: u64,
    /// Of which writes.
    pub writes: u64,
    /// Writes rerouted by the completion-bit window.
    pub rerouted_writes: u64,
    /// Writes that aborted an in-flight migration.
    pub aborting_writes: u64,
    /// VMs allocated.
    pub vms_allocated: u64,
    /// VMs deallocated.
    pub vms_deallocated: u64,
    /// Rank wake-ups forced by allocation pressure.
    pub capacity_wakes: u64,
    /// Injected migration interruptions that hit an in-flight job.
    pub migration_interrupts: u64,
    /// Rank retirements triggered automatically by error health.
    pub auto_retirements: u64,
}

#[derive(Debug, Default)]
struct HostState {
    next_au: u32,
    free_aus: Vec<AuId>,
    next_vm: u32,
    vms: HashMap<u32, Vec<AuId>>,
    /// Admission-control cap on simultaneously mapped AUs (availability:
    /// one tenant cannot starve the pool). `None` = unlimited.
    quota_aus: Option<u32>,
}

impl HostState {
    fn mapped_aus(&self) -> u32 {
        self.vms.values().map(|aus| aus.len() as u32).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobOrigin {
    Drain,
    Hotness { channel: u32 },
}

/// Role a rank currently plays in the hotness engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotnessRole {
    /// Not involved.
    None,
    /// Selected as the channel's victim (planning or migrating).
    Victim,
    /// Parked in self-refresh.
    SelfRefreshing,
}

/// Operational snapshot of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankSnapshot {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// DRAM power state at the backend.
    pub power: PowerState,
    /// Power-down lifecycle state.
    pub lifecycle: RankPdState,
    /// Hotness role.
    pub hotness: HotnessRole,
    /// Error-health lifecycle.
    pub health: RankHealth,
    /// Correctable ECC errors recorded on the rank.
    pub correctable_errors: u64,
    /// Uncorrectable ECC errors recorded on the rank.
    pub uncorrectable_errors: u64,
    /// Live (allocated) segments.
    pub allocated_segments: u64,
    /// Free segments.
    pub free_segments: u64,
    /// Cumulative power-state residency up to the snapshot time, in
    /// [`PowerState::ALL`] order (Standby, APD, PPD, SelfRefresh, MPSM) —
    /// enough to recompute the Table 2 power breakdown from snapshots
    /// alone.
    pub residency: [Picos; 5],
}

/// Operational snapshot of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSnapshot {
    /// Host id.
    pub host: HostId,
    /// Live VMs.
    pub vms: u32,
    /// Allocation units currently mapped.
    pub aus: u32,
}

/// A serializable operational snapshot of the whole device — what a
/// management controller would export for monitoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    /// Per-rank state, channel-major.
    pub ranks: Vec<RankSnapshot>,
    /// Per-host occupancy.
    pub hosts: Vec<HostSnapshot>,
    /// Mapped (live) segments device-wide.
    pub mapped_segments: u64,
    /// Migration jobs queued or moving.
    pub migrations_pending: usize,
    /// Aggregate statistics.
    pub stats: DeviceStats,
    /// Aggregate error-health statistics.
    pub errors: HealthStats,
}

/// The DTL device: translation, allocation, power management and migration
/// over a DRAM back end.
///
/// # Examples
///
/// ```
/// use dtl_core::{AnalyticBackend, DtlConfig, DtlDevice, HostId, HostPhysAddr};
/// use dtl_dram::{AccessKind, Picos, PowerParams};
///
/// let cfg = DtlConfig::tiny();
/// let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 16);
/// dev.register_host(HostId(0))?;
/// let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
/// let base = vm.hpa_base(0, cfg.au_bytes);
/// dev.access(HostId(0), base, AccessKind::Read, Picos::from_us(1))?;
/// # Ok::<(), dtl_core::DtlError>(())
/// ```
#[derive(Debug)]
pub struct DtlDevice<B: MemoryBackend> {
    config: DtlConfig,
    geo: SegmentGeometry,
    backend: B,
    translator: Translator,
    tables: MappingTables,
    alloc: SegmentAllocator,
    migrate: MigrationEngine,
    powerdown: PowerDownEngine,
    health: HealthTracker,
    hotness: HotnessEngine,
    hotness_enabled: bool,
    powerdown_enabled: bool,
    /// Rank power-management policy (the power-policy zoo). Inert for
    /// [`PowerPolicyKind::FixedThreshold`], where the power-down and
    /// hotness engines own every transition, bit-compatible with the
    /// pre-policy device.
    policy: PolicyEngine,
    /// Last observed foreground/bulk traffic per rank (channel-major), the
    /// idle clock the policy demotes against.
    rank_last_access: Vec<Picos>,
    /// Ladder demotions committed by the policy pump.
    policy_demotions: u64,
    hosts: HashMap<HostId, HostState>,
    job_origin: HashMap<u64, JobOrigin>,
    /// Per channel: (jobs still pending, jobs originally planned).
    hotness_pending: HashMap<u32, (u64, u64)>,
    stats: DeviceStats,
    telemetry: Telemetry,
    /// Resolved once at [`DtlDevice::set_telemetry`] time, never on the
    /// access path.
    translation_hist: Option<Arc<Histogram>>,
    /// VM admission latency (table carving + capacity wakes), always on —
    /// an allocation is rare enough that a histogram observe is free.
    slo_admission: Histogram,
    /// Age of completed migrations (finish minus enqueue): how stale the
    /// drain/consolidation backlog ran.
    slo_drain_age: Histogram,
    /// Latency of the most recent successful [`DtlDevice::alloc_vm`], for
    /// callers composing device admission into an end-to-end figure.
    last_admission_latency: Picos,
    /// MPSM exit penalty charged per capacity wake when modeling admission
    /// latency (ddr4-2933 txmpsm).
    wake_exit_latency: Picos,
    /// Command-stream tap for external checkers (off by default).
    tap: CommandTap,
}

impl DtlDevice<crate::backend::AnalyticBackend> {
    /// Convenience constructor: an analytic backend with the given segment
    /// geometry and default DDR4 power parameters.
    pub fn with_analytic_geometry(
        config: DtlConfig,
        channels: u32,
        ranks_per_channel: u32,
        segs_per_rank: u64,
    ) -> Self {
        let geo = SegmentGeometry { channels, ranks_per_channel, segs_per_rank };
        let backend = crate::backend::AnalyticBackend::new(
            geo,
            config.segment_bytes,
            dtl_dram::PowerParams::ddr4_128gb_dimm(),
        );
        DtlDevice::new(config, backend)
    }
}

impl<B: MemoryBackend> DtlDevice<B> {
    /// Builds a device over `backend`. The backend's geometry defines the
    /// segment space.
    pub fn new(config: DtlConfig, backend: B) -> Self {
        let geo = backend.geometry();
        let hotness_params = HotnessParams {
            window: config.profile_window,
            threshold: config.profile_threshold,
            tsp_max_steps: (config.tsp_timeout.as_ps() / config.controller_cycle().as_ps().max(1))
                as u32,
        };
        DtlDevice {
            translator: Translator::new(&config),
            tables: MappingTables::new(config.segments_per_au()),
            alloc: SegmentAllocator::new(geo),
            migrate: MigrationEngine::new(geo, config.segment_bytes, config.migration_retry_limit),
            powerdown: PowerDownEngine::new(geo),
            health: HealthTracker::new(geo, HealthParams::default()),
            hotness: HotnessEngine::new(geo, hotness_params),
            hotness_enabled: true,
            powerdown_enabled: true,
            policy: PolicyEngine::new(
                config.power_policy,
                geo.channels,
                geo.ranks_per_channel,
                config.profile_threshold,
            ),
            rank_last_access: vec![Picos::ZERO; (geo.channels * geo.ranks_per_channel) as usize],
            policy_demotions: 0,
            hosts: HashMap::new(),
            job_origin: HashMap::new(),
            hotness_pending: HashMap::new(),
            stats: DeviceStats::default(),
            telemetry: Telemetry::disabled(),
            translation_hist: None,
            slo_admission: Histogram::default(),
            slo_drain_age: Histogram::default(),
            last_admission_latency: Picos::ZERO,
            wake_exit_latency: {
                let t = dtl_dram::TimingParams::ddr4_2933();
                t.cycles(t.txmpsm)
            },
            tap: CommandTap::default(),
            config,
            geo,
            backend,
        }
    }

    /// Turns the command-stream tap on or off (off by default). While on,
    /// every committed mapping change and power transition is buffered for
    /// [`DtlDevice::drain_commands`]; external checkers replay the stream
    /// into a reference model.
    pub fn set_command_tap(&mut self, on: bool) {
        self.tap.set_enabled(on);
    }

    /// Takes every buffered [`DeviceCommand`] in commit order, flushing
    /// pending backend power events into the stream first.
    pub fn drain_commands(&mut self) -> Vec<DeviceCommand> {
        self.process_events();
        self.tap.drain()
    }

    /// Side-effect-free translation probe for external checkers: walks the
    /// mapping tables directly, bypassing (and not perturbing) the SMC and
    /// access statistics.
    pub fn probe_translation(&self, host: HostId, hpa: HostPhysAddr) -> Option<Dsn> {
        let (hsn, _offset) = self.translator.hsn_of(host, hpa);
        self.tables.translate(hsn)
    }

    /// Every mapped (DSN, HSN) pair (unordered) — the checker's view of
    /// the reverse table.
    pub fn mapped_entries(&self) -> Vec<(Dsn, Hsn)> {
        self.tables.iter_mapped().collect()
    }

    /// Copy migrations queued or in flight. Each holds one allocated but
    /// still-unmapped destination reservation, so external residency
    /// accounting must allow `allocated == mapped + pending copies`.
    pub fn pending_copy_reservations(&self) -> u64 {
        self.migrate.pending_copies()
    }

    /// Deliberately corrupts one forward-mapping entry without updating
    /// the reverse table — a mutation hook for checker self-tests (the
    /// checker must catch the divergence). Returns the corrupted HSN.
    #[doc(hidden)]
    pub fn corrupt_mapping_for_test(&mut self) -> Option<Hsn> {
        let hsn = self.tables.corrupt_first_forward_slot()?;
        self.translator.invalidate(hsn);
        Some(hsn)
    }

    /// Forges a rung-skipping power transition for rank (0, 0) into the
    /// command stream without touching the backend — a mutation hook for
    /// checker self-tests (the checker's legal-transition check must catch
    /// it). Bridges the ledger to active power-down first so only the
    /// legality check — not stream coherence — can flag the forgery.
    #[doc(hidden)]
    pub fn corrupt_power_log_for_test(&mut self, now: Picos) {
        self.process_events();
        let state = self.backend.rank_state(0, 0);
        let mut forge = |from, to| {
            self.tap.record(DeviceCommand::PowerTransition {
                channel: 0,
                rank: 0,
                from,
                to,
                cause: PowerEventCause::Explicit,
                at: now,
            });
        };
        if state != PowerState::Standby {
            forge(state, PowerState::Standby);
        }
        forge(PowerState::Standby, PowerState::ActivePowerDown);
        forge(PowerState::ActivePowerDown, PowerState::SelfRefresh);
    }

    /// Installs a telemetry handle on the device and every engine it owns
    /// (backend, migration, hotness, health). If the handle carries a
    /// metrics registry, the translation-latency histogram is resolved here
    /// so the access path only pays an `Option` check.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.backend.set_telemetry(telemetry.clone());
        self.migrate.set_telemetry(telemetry.clone());
        self.hotness.set_telemetry(telemetry.clone());
        self.health.set_telemetry(telemetry.clone());
        self.translation_hist =
            telemetry.metrics().map(|m| m.histogram("dtl.translation.latency_ps"));
        self.telemetry = telemetry;
    }

    /// The DTL configuration.
    pub fn config(&self) -> &DtlConfig {
        &self.config
    }

    /// The segment geometry.
    pub fn geometry(&self) -> SegmentGeometry {
        self.geo
    }

    /// The backend (power reports, completions).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Enables/disables hotness-aware self-refresh (on by default).
    pub fn set_hotness_enabled(&mut self, on: bool) {
        self.hotness_enabled = on;
    }

    /// Enables/disables rank-level power-down (on by default).
    pub fn set_powerdown_enabled(&mut self, on: bool) {
        self.powerdown_enabled = on;
    }

    /// The active rank power-management policy.
    pub fn power_policy(&self) -> PowerPolicyKind {
        self.policy.kind()
    }

    /// Ladder demotions committed by the policy pump so far (always zero
    /// under [`PowerPolicyKind::FixedThreshold`]).
    pub fn policy_demotions(&self) -> u64 {
        self.policy_demotions
    }

    /// Switches the rank power-management policy. Ranks already demoted
    /// stay where they are — the backend auto-exits any low-power state on
    /// the next access, so a switch never strands a rank. The new policy
    /// starts from a cold idle history.
    pub fn set_power_policy(&mut self, kind: PowerPolicyKind) {
        self.policy = PolicyEngine::new(
            kind,
            self.geo.channels,
            self.geo.ranks_per_channel,
            self.config.profile_threshold,
        );
        self.config.power_policy = kind;
    }

    /// Asks the power policy to postpone the next refresh of `(channel,
    /// rank)` — the refresh-aware policy's schedulable-maintenance lever;
    /// other policies decline. Returns whether the postponement was
    /// granted.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] for out-of-range rank coordinates.
    pub fn postpone_refresh(
        &mut self,
        channel: u32,
        rank: u32,
        now: Picos,
    ) -> Result<bool, DtlError> {
        if channel >= self.geo.channels || rank >= self.geo.ranks_per_channel {
            return Err(DtlError::Internal {
                reason: format!("postpone_refresh out of range: ch{channel} r{rank}"),
            });
        }
        Ok(self.policy.postpone_refresh(channel, rank, now))
    }

    /// Records external (bulk) traffic against a rank's idle clock so the
    /// power policy does not demote a rank that an orchestrator is still
    /// streaming into. No-op apart from bookkeeping; the traffic itself is
    /// charged by the backend.
    pub fn note_rank_traffic(&mut self, channel: u32, rank: u32, now: Picos) {
        if channel < self.geo.channels && rank < self.geo.ranks_per_channel {
            let idx = (channel * self.geo.ranks_per_channel + rank) as usize;
            self.rank_last_access[idx] = self.rank_last_access[idx].max(now);
            self.policy.note_access(channel, rank, now);
        }
    }

    /// Plans rank-group power-downs right now, without waiting for a
    /// deallocation to trigger them. The engine normally runs on the
    /// dealloc path (the only event that can empty a rank group), which
    /// means a device that has never served an allocation keeps every
    /// rank in standby; an external orchestrator that idles whole
    /// devices calls this to park their rank groups immediately. No-op
    /// while power-down is disabled.
    ///
    /// # Errors
    ///
    /// Propagates backend state-transition failures.
    pub fn request_power_down(&mut self, now: Picos) -> Result<(), DtlError> {
        if self.powerdown_enabled {
            self.try_power_down(now)?;
        }
        Ok(())
    }

    /// Device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Segment mapping cache statistics.
    pub fn smc_stats(&self) -> SmcStats {
        self.translator.stats()
    }

    /// Migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migrate.stats()
    }

    /// Migration jobs queued or currently moving data.
    pub fn migrations_pending(&self) -> usize {
        self.migrate.queued() + self.migrate.in_flight()
    }

    /// VM admission latency histogram (table carving + capacity wakes),
    /// picoseconds. One sample per successful [`DtlDevice::alloc_vm`].
    pub fn admission_histogram(&self) -> &Histogram {
        &self.slo_admission
    }

    /// Migration backlog-age histogram: completion minus enqueue of every
    /// finished migration, picoseconds.
    pub fn drain_age_histogram(&self) -> &Histogram {
        &self.slo_drain_age
    }

    /// Latency of the most recent successful [`DtlDevice::alloc_vm`]
    /// (zero before the first), for callers composing device admission
    /// into an end-to-end figure.
    pub fn last_admission_latency(&self) -> Picos {
        self.last_admission_latency
    }

    /// Deepest the migration backlog (queued + in flight) ever got.
    pub fn migration_backlog_high_water(&self) -> u64 {
        self.migrate.backlog_high_water()
    }

    /// Power-down statistics.
    pub fn powerdown_stats(&self) -> PowerDownStats {
        self.powerdown.stats()
    }

    /// Hotness statistics.
    pub fn hotness_stats(&self) -> HotnessStats {
        self.hotness.stats()
    }

    /// Active (allocation-serving) rank count of a channel.
    pub fn active_ranks(&self, channel: u32) -> u32 {
        self.powerdown.active_ranks(channel)
    }

    /// Registers a host.
    ///
    /// # Errors
    ///
    /// [`DtlError::TooManyHosts`] past the configured maximum.
    pub fn register_host(&mut self, host: HostId) -> Result<(), DtlError> {
        if host.0 >= self.config.max_hosts {
            return Err(DtlError::TooManyHosts { host, max_hosts: self.config.max_hosts });
        }
        self.tables.register_host(host);
        self.hosts.entry(host).or_default();
        Ok(())
    }

    /// Allocates `bytes` (rounded up to whole AUs) for a new VM, waking
    /// powered-down rank groups if the active ranks lack capacity.
    ///
    /// # Errors
    ///
    /// * [`DtlError::UnknownHost`] for unregistered hosts;
    /// * [`DtlError::OutOfCapacity`] when the whole device is full.
    pub fn alloc_vm(
        &mut self,
        host: HostId,
        bytes: u64,
        now: Picos,
    ) -> Result<VmAllocation, DtlError> {
        if !self.hosts.contains_key(&host) {
            return Err(DtlError::UnknownHost(host));
        }
        let n_aus = bytes.div_ceil(self.config.au_bytes).max(1);
        self.check_quota(host, n_aus as u32)?;
        let wakes_before = self.stats.capacity_wakes;
        let mut aus = Vec::with_capacity(n_aus as usize);
        for _ in 0..n_aus {
            let dsns = loop {
                match self.alloc.allocate_au(self.config.segments_per_au()) {
                    Ok(dsns) => break Ok(dsns),
                    Err(DtlError::OutOfCapacity { requested, free }) => {
                        match self.powerdown.wake_one_group(&mut self.alloc) {
                            Ok(exits) => {
                                for (c, r) in exits {
                                    self.backend.set_rank_state(c, r, PowerState::Standby, now)?;
                                }
                                self.stats.capacity_wakes += 1;
                            }
                            Err(DtlError::OutOfCapacity { .. }) => {
                                break Err(DtlError::OutOfCapacity { requested, free });
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Err(e) => return Err(e),
                }
            };
            let dsns = match dsns {
                Ok(d) => d,
                Err(e) => {
                    // Roll back the AUs created so far: the allocation is
                    // all-or-nothing.
                    for au in aus.drain(..) {
                        let freed = self.tables.remove_au(host, au)?;
                        self.alloc.free_segments(&freed)?;
                        self.tap.record(DeviceCommand::AuRemoved {
                            host,
                            au,
                            dsns: freed,
                            at: now,
                        });
                        self.hosts.get_mut(&host).expect("checked above").free_aus.push(au);
                    }
                    return Err(e);
                }
            };
            let state = self.hosts.get_mut(&host).expect("checked above");
            let au = state.free_aus.pop().unwrap_or_else(|| {
                let id = AuId(state.next_au);
                state.next_au += 1;
                id
            });
            let tap_dsns = self.tap.enabled().then(|| dsns.clone());
            self.tables.create_au(host, au, dsns)?;
            if let Some(dsns) = tap_dsns {
                self.tap.record(DeviceCommand::AuCreated { host, au, dsns, at: now });
            }
            aus.push(au);
        }
        let state = self.hosts.get_mut(&host).expect("checked above");
        let vm = state.next_vm;
        state.next_vm += 1;
        state.vms.insert(vm, aus.clone());
        self.stats.vms_allocated += 1;
        // Admission latency: one controller cycle per segment-table entry
        // carved, plus the MPSM exit penalty of every rank group the
        // allocation had to wake for capacity.
        let wakes = self.stats.capacity_wakes - wakes_before;
        let carve = self.config.controller_cycle() * (n_aus * self.config.segments_per_au());
        self.last_admission_latency = carve + self.wake_exit_latency * wakes;
        self.slo_admission.observe(self.last_admission_latency.as_ps());
        self.telemetry.emit(
            now.as_ps(),
            EventKind::VmAlloc {
                vm: (u64::from(host.0) << 32) | u64::from(vm),
                segments: n_aus * self.config.segments_per_au(),
            },
        );
        Ok(VmAllocation { handle: VmHandle { host, vm }, aus, bytes: n_aus * self.config.au_bytes })
    }

    /// Sets (or clears) a host's capacity quota in allocation units. An
    /// availability guard: a tenant at its quota gets
    /// [`DtlError::QuotaExceeded`] instead of draining the shared pool.
    ///
    /// # Errors
    ///
    /// [`DtlError::UnknownHost`] for unregistered hosts.
    pub fn set_host_quota(&mut self, host: HostId, quota_aus: Option<u32>) -> Result<(), DtlError> {
        let state = self.hosts.get_mut(&host).ok_or(DtlError::UnknownHost(host))?;
        state.quota_aus = quota_aus;
        Ok(())
    }

    fn check_quota(&self, host: HostId, additional_aus: u32) -> Result<(), DtlError> {
        let state = self.hosts.get(&host).ok_or(DtlError::UnknownHost(host))?;
        if let Some(quota) = state.quota_aus {
            let mapped = state.mapped_aus();
            if mapped + additional_aus > quota {
                return Err(DtlError::QuotaExceeded { host, mapped_aus: mapped, quota_aus: quota });
            }
        }
        Ok(())
    }

    /// Grows a VM by `bytes` (AU-rounded) — memory ballooning up, as the
    /// paper's evaluation uses (§5.1). The new AUs extend the VM's HPA
    /// space; existing addresses are untouched.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DtlDevice::alloc_vm`], plus
    /// [`DtlError::UnknownVm`] for stale handles.
    pub fn grow_vm(
        &mut self,
        handle: VmHandle,
        bytes: u64,
        now: Picos,
    ) -> Result<Vec<AuId>, DtlError> {
        let state = self.hosts.get(&handle.host).ok_or(DtlError::UnknownVm(handle))?;
        if !state.vms.contains_key(&handle.vm) {
            return Err(DtlError::UnknownVm(handle));
        }
        let n_aus = bytes.div_ceil(self.config.au_bytes).max(1);
        self.check_quota(handle.host, n_aus as u32)?;
        // Reuse alloc_vm's machinery by allocating a scratch VM, then
        // transplanting its AUs: keeps the wake/rollback paths single.
        let scratch = self.alloc_vm(handle.host, bytes, now)?;
        let state = self.hosts.get_mut(&handle.host).expect("checked above");
        let new_aus = state.vms.remove(&scratch.handle.vm).expect("just created");
        state.next_vm -= 1; // the scratch id was never observable
        state.vms.get_mut(&handle.vm).expect("checked above").extend(new_aus.iter().copied());
        self.stats.vms_allocated -= 1; // the scratch was not a real VM
        Ok(new_aus)
    }

    /// Shrinks a VM by releasing its `n_aus` highest allocation units —
    /// memory ballooning down. The released HPA ranges become unmapped.
    ///
    /// # Errors
    ///
    /// * [`DtlError::UnknownVm`] for stale handles;
    /// * [`DtlError::Internal`] when asked to release more AUs than the VM
    ///   holds (release everything via [`DtlDevice::dealloc_vm`] instead).
    pub fn shrink_vm(&mut self, handle: VmHandle, n_aus: u32, now: Picos) -> Result<(), DtlError> {
        let state = self.hosts.get_mut(&handle.host).ok_or(DtlError::UnknownVm(handle))?;
        let aus = state.vms.get_mut(&handle.vm).ok_or(DtlError::UnknownVm(handle))?;
        if n_aus as usize >= aus.len() {
            return Err(DtlError::Internal {
                reason: format!(
                    "shrinking by {n_aus} of {} AUs would empty the VM; use dealloc_vm",
                    aus.len()
                ),
            });
        }
        let released: Vec<AuId> = aus.split_off(aus.len() - n_aus as usize);
        for au in released {
            let dsns = self.tables.remove_au(handle.host, au)?;
            for (off, dsn) in dsns.iter().enumerate() {
                let cancelled = self.migrate.cancel_involving(*dsn);
                for job in cancelled {
                    self.cancel_job(job.id, job.kind, *dsn, now)?;
                }
                self.translator.invalidate(Hsn { host: handle.host, au, au_offset: off as u32 });
            }
            self.alloc.free_segments(&dsns)?;
            self.tap.record(DeviceCommand::AuRemoved { host: handle.host, au, dsns, at: now });
            self.hosts.get_mut(&handle.host).expect("still present").free_aus.push(au);
        }
        if self.powerdown_enabled {
            self.try_power_down(now)?;
        }
        Ok(())
    }

    /// Deallocates a VM: unmaps its AUs, cancels migrations touching them,
    /// and (if enabled) plans rank-level power-down.
    ///
    /// # Errors
    ///
    /// [`DtlError::UnknownVm`] for stale handles.
    pub fn dealloc_vm(&mut self, handle: VmHandle, now: Picos) -> Result<(), DtlError> {
        let state = self.hosts.get_mut(&handle.host).ok_or(DtlError::UnknownVm(handle))?;
        let aus = state.vms.remove(&handle.vm).ok_or(DtlError::UnknownVm(handle))?;
        let released = aus.len() as u64 * self.config.segments_per_au();
        for au in aus {
            let dsns = self.tables.remove_au(handle.host, au)?;
            for (off, dsn) in dsns.iter().enumerate() {
                let cancelled = self.migrate.cancel_involving(*dsn);
                for job in cancelled {
                    self.cancel_job(job.id, job.kind, *dsn, now)?;
                }
                self.translator.invalidate(Hsn { host: handle.host, au, au_offset: off as u32 });
            }
            self.alloc.free_segments(&dsns)?;
            self.tap.record(DeviceCommand::AuRemoved { host: handle.host, au, dsns, at: now });
            let state = self.hosts.get_mut(&handle.host).expect("still present");
            state.free_aus.push(au);
        }
        self.stats.vms_deallocated += 1;
        self.telemetry.emit(
            now.as_ps(),
            EventKind::VmDealloc {
                vm: (u64::from(handle.host.0) << 32) | u64::from(handle.vm),
                segments: released,
            },
        );
        if self.powerdown_enabled {
            self.try_power_down(now)?;
        }
        Ok(())
    }

    /// Handles a cancelled migration job's bookkeeping.
    fn cancel_job(
        &mut self,
        id: u64,
        kind: MigrationKind,
        freed: Dsn,
        now: Picos,
    ) -> Result<(), DtlError> {
        match self.job_origin.remove(&id) {
            Some(JobOrigin::Drain) => {
                if let MigrationKind::Copy { dst, .. } = kind {
                    if dst != freed {
                        // Release the drain's destination reservation.
                        self.alloc.free_segments(&[dst])?;
                    }
                }
                let ranks = self.powerdown.on_migration_complete(id);
                self.power_down_ranks(&ranks, now)?;
                self.note_retired_ranks(&ranks, now);
            }
            Some(JobOrigin::Hotness { channel }) => {
                // A cancelled hotness *copy* holds a destination
                // reservation that must be released (unless the freed
                // segment itself is the destination, which cannot happen:
                // reservations are never part of an AU).
                if let MigrationKind::Copy { dst, .. } = kind {
                    if dst != freed {
                        self.alloc.free_segments(&[dst])?;
                    }
                }
                self.finish_hotness_job(channel, now)?;
            }
            None => {}
        }
        Ok(())
    }

    /// Re-enqueues a cancelled migration job unchanged (refused
    /// retirements must leave migration state exactly as found). The job
    /// restarts from scratch under a fresh id; pre-commit copy work is
    /// idempotent, so nothing is lost.
    fn restore_job(
        &mut self,
        job: &crate::migrate::MigrationJob,
        now: Picos,
    ) -> Result<(), DtlError> {
        let new_id = match job.kind {
            MigrationKind::Copy { src, dst } => self.migrate.enqueue_copy(src, dst, now)?,
            MigrationKind::Swap { a, b } => self.migrate.enqueue_swap(a, b, now)?,
        };
        if let Some(origin) = self.job_origin.remove(&job.id) {
            self.job_origin.insert(new_id, origin);
            if origin == JobOrigin::Drain {
                self.powerdown.replace_job(job.id, new_id);
            }
        }
        Ok(())
    }

    /// Plans and launches rank-group power-downs while capacity allows.
    fn try_power_down(&mut self, now: Picos) -> Result<(), DtlError> {
        loop {
            let plan = {
                let migrate = &self.migrate;
                self.powerdown
                    .plan_power_down_excluding(&mut self.alloc, |c, r| migrate.involves_rank(c, r))
            };
            let Some(plan) = plan else { break };
            let mut ids = Vec::with_capacity(plan.copies.len());
            for (src, dst) in &plan.copies {
                let id = self.migrate.enqueue_copy(*src, *dst, now)?;
                self.job_origin.insert(id, JobOrigin::Drain);
                ids.push(id);
            }
            let immediate = self.powerdown.register_drain_jobs(&plan, &ids);
            self.power_down_ranks(&immediate, now)?;
        }
        Ok(())
    }

    fn power_down_ranks(&mut self, ranks: &[(u32, u32)], now: Picos) -> Result<(), DtlError> {
        for &(c, r) in ranks {
            // The rank may sit anywhere on the retention ladder (hotness
            // parked it in self-refresh, or the power policy demoted it);
            // MPSM requires passing through standby, and the hotness engine
            // must forget its victim. The MPSM entry is issued at the
            // exit's *completion* time — issuing it at `now` would
            // back-date the entry into the exit window, producing an
            // out-of-order command stream and charging the standby bridge
            // to the wrong state.
            let state = self.backend.rank_state(c, r);
            let mut at = now;
            if state != PowerState::Standby {
                at = self.backend.set_rank_state(c, r, PowerState::Standby, now)?;
                if state == PowerState::SelfRefresh {
                    self.hotness.on_sr_exit(c, r, at);
                }
            }
            self.backend.set_rank_state(c, r, PowerState::Mpsm, at)?;
        }
        Ok(())
    }

    /// Permanently retires a rank (the reliability extension the paper's
    /// conclusion points to): live segments are drained to the channel's
    /// other active ranks, the rank enters maximum power saving mode, and
    /// it is never used for allocation or woken for capacity again —
    /// transparently to every host.
    ///
    /// Powered-down rank groups are woken if the channel needs their
    /// capacity to absorb the retiring rank's data.
    ///
    /// # Errors
    ///
    /// * [`DtlError::OutOfCapacity`] when even with every group awake the
    ///   channel cannot absorb the rank's live segments;
    /// * [`DtlError::Internal`] when the rank is already retired/retiring
    ///   or is the channel's last active rank.
    pub fn retire_rank(&mut self, channel: u32, rank: u32, now: Picos) -> Result<(), DtlError> {
        let before = self.rank_health(channel, rank);
        self.retire_rank_inner(channel, rank, now)?;
        let after = self.rank_health(channel, rank);
        if after != before {
            self.telemetry.emit(
                now.as_ps(),
                EventKind::HealthTransition {
                    channel,
                    rank,
                    from: before.telemetry_id(),
                    to: after.telemetry_id(),
                },
            );
        }
        Ok(())
    }

    fn retire_rank_inner(&mut self, channel: u32, rank: u32, now: Picos) -> Result<(), DtlError> {
        match self.powerdown.rank_state(channel, rank) {
            RankPdState::Retired => {
                return Err(DtlError::Internal {
                    reason: format!("rank ch{channel}/rk{rank} is already retired"),
                });
            }
            RankPdState::Draining => {
                // Already draining for power-down: ride the drain and make
                // its terminal state Retired.
                self.powerdown.convert_drain_to_retirement(channel, rank);
                return Ok(());
            }
            RankPdState::PoweredDown | RankPdState::Active => {}
        }
        // Cancel or re-aim migrations touching the rank. Drain copies
        // *into* the retiring rank still have live sources elsewhere —
        // they are re-aimed at fresh destinations; drain copies *out of*
        // this rank cannot exist here (the rank is not Draining);
        // hotness jobs unwind exactly as on VM deallocation.
        let involved = self.migrate.jobs_involving_rank(channel, rank);
        let ids: Vec<u64> = involved.iter().map(|j| j.id).collect();
        let cancelled = self.migrate.cancel_ids(&ids);
        let mut pending = cancelled.into_iter();
        while let Some(job) = pending.next() {
            let reaim = match (self.job_origin.get(&job.id), job.kind) {
                (Some(JobOrigin::Drain), MigrationKind::Copy { src, dst }) => {
                    let src_loc = self.geo.location(src);
                    let src_elsewhere = !(src_loc.channel == channel && src_loc.rank == rank);
                    (src_elsewhere && self.tables.reverse(src).is_some()).then_some((src, dst))
                }
                _ => None,
            };
            match reaim {
                Some((src, dst)) => {
                    let src_loc = self.geo.location(src);
                    // Find a destination off the retiring rank, waking
                    // powered-down groups for capacity exactly like the
                    // planning loop below.
                    let new_dst = loop {
                        if let Some(d) = self.pick_drain_destination(src_loc.channel, rank) {
                            break Some(d);
                        }
                        match self.powerdown.wake_one_group(&mut self.alloc) {
                            Ok(exits) => {
                                for (c, r) in exits {
                                    self.backend.set_rank_state(c, r, PowerState::Standby, now)?;
                                }
                                self.stats.capacity_wakes += 1;
                            }
                            Err(_) => break None,
                        }
                    };
                    let Some(new_dst) = new_dst else {
                        // Genuinely no spare capacity: refuse the retirement
                        // atomically by restoring this and every remaining
                        // cancelled job before surfacing the refusal.
                        self.restore_job(&job, now)?;
                        for j in pending {
                            self.restore_job(&j, now)?;
                        }
                        return Err(DtlError::OutOfCapacity {
                            requested: self.alloc.allocated_in_rank(channel, rank),
                            free: 0,
                        });
                    };
                    self.job_origin.remove(&job.id);
                    self.alloc.free_segments(&[dst])?;
                    let new_id = self.migrate.enqueue_copy(src, self.geo.dsn(new_dst), now)?;
                    self.job_origin.insert(new_id, JobOrigin::Drain);
                    self.powerdown.replace_job(job.id, new_id);
                }
                None => self.cancel_job(job.id, job.kind, Dsn(u64::MAX), now)?,
            }
        }
        // A self-refreshing victim must wake (and the hotness engine must
        // forget it) before its data can move.
        if self.backend.rank_state(channel, rank) == PowerState::SelfRefresh {
            let at = self.backend.set_rank_state(channel, rank, PowerState::Standby, now)?;
            self.hotness.on_sr_exit(channel, rank, at);
        }
        let plan = loop {
            match self.powerdown.plan_retirement(&mut self.alloc, channel, rank) {
                Ok(plan) => break plan,
                Err(DtlError::OutOfCapacity { .. }) => {
                    let exits = self.powerdown.wake_one_group(&mut self.alloc)?;
                    for (c, r) in exits {
                        self.backend.set_rank_state(c, r, PowerState::Standby, now)?;
                    }
                    self.stats.capacity_wakes += 1;
                }
                Err(e) => return Err(e),
            }
        };
        let mut ids = Vec::with_capacity(plan.copies.len());
        for (src, dst) in &plan.copies {
            let id = self.migrate.enqueue_copy(*src, *dst, now)?;
            self.job_origin.insert(id, JobOrigin::Drain);
            ids.push(id);
        }
        let immediate = self.powerdown.register_retirement_jobs(&plan, &ids);
        self.power_down_ranks(&immediate, now)?;
        Ok(())
    }

    /// Emits `HealthTransition` events for ranks whose drain just finalized
    /// into retirement. Power-down finalizations of healthy ranks are power
    /// events, not health events, so they are skipped.
    fn note_retired_ranks(&mut self, ranks: &[(u32, u32)], now: Picos) {
        if !self.telemetry.enabled() {
            return;
        }
        for &(c, r) in ranks {
            if self.powerdown.rank_state(c, r) == RankPdState::Retired {
                let from = self.health.health(c, r, RankPdState::Draining).telemetry_id();
                self.telemetry.emit(
                    now.as_ps(),
                    EventKind::HealthTransition {
                        channel: c,
                        rank: r,
                        from,
                        to: HealthStateId::Retired,
                    },
                );
            }
        }
    }

    /// Picks a drain destination in `channel` excluding `exclude_rank`:
    /// the most utilized active rank with free space.
    fn pick_drain_destination(
        &mut self,
        channel: u32,
        exclude_rank: u32,
    ) -> Option<crate::addr::SegmentLocation> {
        let rank = (0..self.geo.ranks_per_channel)
            .filter(|r| {
                *r != exclude_rank
                    && self.powerdown.rank_state(channel, *r) == RankPdState::Active
                    && self.alloc.free_in_rank(channel, *r) > 0
            })
            .max_by_key(|r| (self.alloc.allocated_in_rank(channel, *r), u32::MAX - *r))?;
        self.alloc.take_free_in_rank(channel, rank)
    }

    /// Replaces the error-health parameters, resetting all error history.
    /// Call before injecting any errors.
    pub fn set_health_params(&mut self, params: HealthParams) {
        self.health = HealthTracker::new(self.geo, params);
    }

    /// Aggregate error-health statistics.
    pub fn health_stats(&self) -> HealthStats {
        self.health.stats()
    }

    /// The rank's effective error-health lifecycle state.
    pub fn rank_health(&self, channel: u32, rank: u32) -> RankHealth {
        self.health.health(channel, rank, self.powerdown.rank_state(channel, rank))
    }

    /// The rank's error counters and leaky-bucket level.
    pub fn rank_errors(&self, channel: u32, rank: u32) -> RankErrorRecord {
        self.health.counters(channel, rank)
    }

    fn check_rank(&self, channel: u32, rank: u32) -> Result<(), DtlError> {
        if channel >= self.geo.channels || rank >= self.geo.ranks_per_channel {
            return Err(DtlError::Internal {
                reason: format!("rank ch{channel}/rk{rank} outside the device geometry"),
            });
        }
        Ok(())
    }

    /// Reports a correctable (ECC-fixed) error on a rank. The data is
    /// intact; the error only feeds the rank's leaky-bucket health counter.
    /// Crossing the retirement threshold triggers an automatic
    /// [`DtlDevice::retire_rank`]; a refused retirement (last active rank,
    /// or no spare capacity anywhere) leaves the rank `Degraded` but
    /// serving. Returns the rank's health after the error.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] for a rank outside the geometry, or a broken
    /// invariant while draining the rank.
    pub fn inject_correctable_error(
        &mut self,
        channel: u32,
        rank: u32,
        now: Picos,
    ) -> Result<RankHealth, DtlError> {
        self.check_rank(channel, rank)?;
        self.telemetry.emit(
            now.as_ps(),
            EventKind::FaultInjected {
                kind: FaultKindId::CorrectableEcc,
                channel: Some(channel),
                rank: Some(rank),
            },
        );
        let tripped = self.health.record_correctable(channel, rank, now);
        self.auto_retire_if_due(channel, rank, tripped, now)?;
        Ok(self.rank_health(channel, rank))
    }

    /// Reports an uncorrectable (multi-bit) error on a rank. The mapping
    /// machinery is unaffected — translations stay consistent — but every
    /// live segment resident in the rank is at risk of returning poisoned
    /// data, and the report carries that blast radius so the harness can
    /// account host-visible loss. Counts heavily toward retirement.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DtlDevice::inject_correctable_error`].
    pub fn inject_uncorrectable_error(
        &mut self,
        channel: u32,
        rank: u32,
        now: Picos,
    ) -> Result<UncorrectableReport, DtlError> {
        self.check_rank(channel, rank)?;
        self.telemetry.emit(
            now.as_ps(),
            EventKind::FaultInjected {
                kind: FaultKindId::UncorrectableEcc,
                channel: Some(channel),
                rank: Some(rank),
            },
        );
        let segments_at_risk = self
            .tables
            .iter_mapped()
            .filter(|(dsn, _)| {
                let loc = self.geo.location(*dsn);
                loc.channel == channel && loc.rank == rank
            })
            .count() as u64;
        let tripped = self.health.record_uncorrectable(channel, rank, now);
        self.auto_retire_if_due(channel, rank, tripped, now)?;
        Ok(UncorrectableReport { segments_at_risk, health: self.rank_health(channel, rank) })
    }

    fn auto_retire_if_due(
        &mut self,
        channel: u32,
        rank: u32,
        tripped: bool,
        now: Picos,
    ) -> Result<(), DtlError> {
        if !tripped {
            return Ok(());
        }
        match self.retire_rank(channel, rank, now) {
            Ok(()) => {
                self.stats.auto_retirements += 1;
                Ok(())
            }
            // Refused: the channel cannot spare the rank right now (last
            // active rank, or no capacity anywhere to absorb its data).
            // The rank stays Degraded and keeps serving.
            Err(DtlError::OutOfCapacity { .. }) | Err(DtlError::Internal { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Cuts off the channel's in-flight migration mid-transfer (fault
    /// injection: controller reset / queue flush). Crash consistency holds
    /// in every outcome — mapping tables and SMC only ever change on job
    /// completion, so an interrupted job's partial destination data is
    /// discarded and the job *replays*; past its retry budget it is
    /// *rolled back*: a drain restarts from scratch (the rank must still
    /// empty), while a hotness move is abandoned and its reservation
    /// released.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] for a channel outside the geometry or broken
    /// rollback bookkeeping.
    pub fn inject_migration_interrupt(
        &mut self,
        channel: u32,
        now: Picos,
    ) -> Result<MigrationInterrupt, DtlError> {
        if channel >= self.geo.channels {
            return Err(DtlError::Internal {
                reason: format!("channel {channel} outside the device geometry"),
            });
        }
        self.telemetry.emit(
            now.as_ps(),
            EventKind::FaultInjected {
                kind: FaultKindId::MigrationInterrupt,
                channel: Some(channel),
                rank: None,
            },
        );
        let outcome = self.migrate.interrupt_channel(channel, now);
        if outcome != MigrationInterrupt::Idle {
            self.stats.migration_interrupts += 1;
        }
        if let MigrationInterrupt::RolledBack { job } = outcome {
            self.rollback_job(job, now)?;
        }
        Ok(outcome)
    }

    /// Unwinds a migration job the engine rolled back after an
    /// interruption exhausted its retry budget.
    fn rollback_job(
        &mut self,
        job: crate::migrate::MigrationJob,
        now: Picos,
    ) -> Result<(), DtlError> {
        match self.job_origin.remove(&job.id) {
            Some(JobOrigin::Drain) => {
                let MigrationKind::Copy { src, dst } = job.kind else {
                    return Err(DtlError::Internal { reason: "drain job must be a copy".into() });
                };
                if self.tables.reverse(src).is_some() {
                    // Source still live: the rank must still empty, so the
                    // drain restarts from scratch under a fresh id.
                    let new_id = self.migrate.enqueue_copy(src, dst, now)?;
                    self.job_origin.insert(new_id, JobOrigin::Drain);
                    self.powerdown.replace_job(job.id, new_id);
                } else {
                    // Source vanished (deallocated): release the
                    // reservation and let the drain bookkeeping complete.
                    self.alloc.free_segments(&[dst])?;
                    let ranks = self.powerdown.on_migration_complete(job.id);
                    self.power_down_ranks(&ranks, now)?;
                    self.note_retired_ranks(&ranks, now);
                }
            }
            Some(JobOrigin::Hotness { channel }) => {
                // Abandon the consolidation move: release a copy's
                // destination reservation and drop any cached translations
                // of the endpoints, leaving the original mapping
                // authoritative.
                if let MigrationKind::Copy { dst, .. } = job.kind {
                    self.alloc.free_segments(&[dst])?;
                }
                let (x, y) = match job.kind {
                    MigrationKind::Copy { src, dst } => (src, dst),
                    MigrationKind::Swap { a, b } => (a, b),
                };
                for d in [x, y] {
                    if let Some(h) = self.tables.reverse(d) {
                        self.translator.invalidate(h);
                    }
                }
                self.finish_hotness_job(channel, now)?;
            }
            None => {}
        }
        Ok(())
    }

    /// Serves one 64 B access from a host.
    ///
    /// # Errors
    ///
    /// * [`DtlError::UnknownHost`] for unregistered hosts;
    /// * [`DtlError::UnmappedAddress`] for HPAs outside any live AU.
    pub fn access(
        &mut self,
        host: HostId,
        hpa: HostPhysAddr,
        kind: AccessKind,
        now: Picos,
    ) -> Result<AccessOutcome, DtlError> {
        if !self.hosts.contains_key(&host) {
            return Err(DtlError::UnknownHost(host));
        }
        self.process_events();
        let translation = self.translator.translate(
            host,
            hpa,
            &self.tables,
            self.backend.est_access_latency(),
        )?;
        let (dsn, smc_outcome, translation_latency, offset) =
            (translation.dsn, translation.smc, translation.latency, translation.offset);
        if let Some(hist) = &self.translation_hist {
            hist.observe(translation_latency.as_ps());
        }
        // Atomic-migration write protocol (§4.2).
        let mut routed_dsn = dsn;
        if kind.is_write() {
            match self.migrate.on_foreground_write(dsn, offset, now) {
                WriteRouting::Proceed => {}
                WriteRouting::RouteTo(d) => {
                    routed_dsn = d;
                    self.stats.rerouted_writes += 1;
                }
                WriteRouting::AbortedJob => {
                    self.stats.aborting_writes += 1;
                }
            }
        }
        let loc = self.geo.location(routed_dsn);
        let arrival = now + translation_latency;
        let completion_estimate =
            self.backend.access(loc, offset, kind, Priority::Foreground, arrival);
        let idx = (loc.channel * self.geo.ranks_per_channel + loc.rank) as usize;
        self.rank_last_access[idx] = self.rank_last_access[idx].max(arrival);
        self.policy.note_access(loc.channel, loc.rank, arrival);
        if self.hotness_enabled {
            self.hotness.on_access(loc, now);
        }
        self.stats.accesses += 1;
        if kind.is_write() {
            self.stats.writes += 1;
        }
        Ok(AccessOutcome {
            dsn: routed_dsn,
            smc: smc_outcome,
            translation_latency,
            completion_estimate,
        })
    }

    /// Advances device time: runs the backend, completes migrations,
    /// advances the hotness state machine.
    ///
    /// # Errors
    ///
    /// Internal errors indicate broken invariants and should be treated as
    /// bugs.
    pub fn tick(&mut self, now: Picos) -> Result<(), DtlError> {
        self.backend.advance_to(now);
        self.process_events();
        let completed = self.migrate.pump(now, &mut self.backend);
        for done in completed {
            self.slo_drain_age.observe(done.finished.saturating_sub(done.job.enqueued_at).as_ps());
            self.finish_job(done.job.id, done.job.kind, now)?;
        }
        if self.hotness_enabled {
            let pd = &self.powerdown;
            let plans = self.hotness.pump(now, |c, r| pd.rank_state(c, r) == RankPdState::Active);
            for plan in plans {
                let mut count = 0u64;
                for (v_loc, t_loc) in &plan.swaps {
                    let (a, b) = (self.geo.dsn(*v_loc), self.geo.dsn(*t_loc));
                    if self.migrate.involves(a) || self.migrate.involves(b) {
                        continue;
                    }
                    // The TSP may have claimed a slot in a rank that the
                    // power-down engine has since selected (or drained):
                    // moving live data there would end up in MPSM.
                    if self.powerdown.rank_state(t_loc.channel, t_loc.rank) != RankPdState::Active {
                        continue;
                    }
                    // The victim slot must still hold live, mapped data —
                    // a deallocation since planning leaves stale pairs.
                    if !self.alloc.is_allocated(*v_loc) || self.tables.reverse(a).is_none() {
                        continue;
                    }
                    // The counterpart is either live+mapped (full swap),
                    // free (one-way copy whose destination must be reserved
                    // *now*, or a concurrent drain could claim it), or an
                    // unmapped reservation of another migration (skip).
                    let id = if self.alloc.is_allocated(*t_loc) {
                        if self.tables.reverse(b).is_none() {
                            continue; // someone else's reservation
                        }
                        self.migrate.enqueue_swap(a, b, now)?
                    } else {
                        if !self.alloc.reserve_slot(*t_loc) {
                            continue; // raced with another reservation
                        }
                        self.migrate.enqueue_copy(a, b, now)?
                    };
                    self.job_origin.insert(id, JobOrigin::Hotness { channel: plan.channel });
                    count += 1;
                }
                if count == 0 {
                    let victim = self.hotness.on_plan_migrated(plan.channel, now);
                    self.enter_self_refresh(plan.channel, victim, now)?;
                    self.telemetry.emit(
                        now.as_ps(),
                        EventKind::SelfRefreshSwap { channel: plan.channel, victim, swaps: 0 },
                    );
                } else {
                    self.hotness_pending.insert(plan.channel, (count, count));
                }
            }
        }
        self.pump_power_policy(now)?;
        Ok(())
    }

    /// Walks every rank one policy step: ranks whose idle clock has passed
    /// the policy's threshold demote one rung down the retention ladder.
    /// Inert under [`PowerPolicyKind::FixedThreshold`] (the power-down and
    /// hotness engines own every transition there). Ranks owned by another
    /// engine — draining, parked, retired, the hotness victim already in
    /// self-refresh, or an endpoint of an in-flight migration — are
    /// skipped so the pump never fights them.
    fn pump_power_policy(&mut self, now: Picos) -> Result<(), DtlError> {
        if self.policy.is_inert() {
            return Ok(());
        }
        for c in 0..self.geo.channels {
            for r in 0..self.geo.ranks_per_channel {
                let state = self.backend.rank_state(c, r);
                if !matches!(
                    state,
                    PowerState::Standby
                        | PowerState::ActivePowerDown
                        | PowerState::PrechargePowerDown
                ) {
                    continue;
                }
                if self.powerdown.rank_state(c, r) != RankPdState::Active
                    || self.migrate.involves_rank(c, r)
                {
                    continue;
                }
                let idx = (c * self.geo.ranks_per_channel + r) as usize;
                let idle = now.saturating_sub(self.rank_last_access[idx]);
                if let Some(next) = self.policy.demote(c, r, state, idle) {
                    debug_assert!(
                        dtl_dram::transition_is_legal(state, next) && next.retains_data(),
                        "policy {:?} proposed {state:?} -> {next:?}",
                        self.policy.kind()
                    );
                    self.backend.set_rank_state(c, r, next, now)?;
                    self.policy_demotions += 1;
                }
            }
        }
        Ok(())
    }

    /// The next time [`DtlDevice::tick`] has real work to do, for
    /// event-driven drivers (`dtl-event`): the earliest in-flight or
    /// startable migration, or the next hotness phase deadline when the
    /// hotness engine is enabled. `None` means the device is quiescent —
    /// power-state residency and energy integrate analytically in the
    /// backend, so no tick is needed until new work arrives (an access,
    /// an allocation, or an explicit power-down request). Re-query after
    /// every tick or mutating call; deadlines move as work completes.
    pub fn next_activity_at(&self) -> Option<Picos> {
        let migrate = self.migrate.next_event_at();
        let hotness = if self.hotness_enabled { self.hotness.next_deadline() } else { None };
        let policy = self.next_policy_deadline();
        [migrate, hotness, policy].into_iter().flatten().min()
    }

    /// The earliest instant a rank becomes eligible for a policy demotion,
    /// so event-driven drivers wake the pump in time. `None` when the
    /// policy is inert or every demotable rank has bottomed out.
    fn next_policy_deadline(&self) -> Option<Picos> {
        if self.policy.is_inert() {
            return None;
        }
        let mut earliest: Option<Picos> = None;
        for c in 0..self.geo.channels {
            for r in 0..self.geo.ranks_per_channel {
                let state = self.backend.rank_state(c, r);
                if !matches!(
                    state,
                    PowerState::Standby
                        | PowerState::ActivePowerDown
                        | PowerState::PrechargePowerDown
                ) {
                    continue;
                }
                if self.powerdown.rank_state(c, r) != RankPdState::Active {
                    continue;
                }
                let idx = (c * self.geo.ranks_per_channel + r) as usize;
                if let Some(d) = self.policy.deadline(c, r, state, self.rank_last_access[idx]) {
                    earliest = Some(earliest.map_or(d, |e| e.min(d)));
                }
            }
        }
        earliest
    }

    fn finish_job(&mut self, id: u64, kind: MigrationKind, now: Picos) -> Result<(), DtlError> {
        match self.job_origin.remove(&id) {
            Some(JobOrigin::Drain) => {
                let MigrationKind::Copy { src, dst } = kind else {
                    return Err(DtlError::Internal { reason: "drain job must be a copy".into() });
                };
                match self.tables.reverse(src) {
                    Some(hsn) => {
                        self.tables.remap(hsn, dst)?;
                        self.tap.record(DeviceCommand::Remap { hsn, from: src, to: dst, at: now });
                        self.translator.invalidate(hsn);
                        self.alloc.complete_move(self.geo.location(src))?;
                    }
                    None => {
                        // Source vanished (deallocated) after the data
                        // moved: release the reservation.
                        self.alloc.free_segments(&[dst])?;
                    }
                }
                let ranks = self.powerdown.on_migration_complete(id);
                self.power_down_ranks(&ranks, now)?;
                self.note_retired_ranks(&ranks, now);
            }
            Some(JobOrigin::Hotness { channel }) => {
                // Hotness jobs are swaps (two live segments) or one-way
                // copies (live segment into a reserved free slot); the
                // mapping update is a swap either way.
                match kind {
                    MigrationKind::Swap { a, b } => {
                        let (ha, hb) = self.tables.swap(a, b)?;
                        self.tap.record(DeviceCommand::MappingSwap { a, b, at: now });
                        for h in [ha, hb].into_iter().flatten() {
                            self.translator.invalidate(h);
                        }
                        self.alloc.swap_status(self.geo.location(a), self.geo.location(b));
                    }
                    MigrationKind::Copy { src, dst } => {
                        let (ha, hb) = self.tables.swap(src, dst)?;
                        self.tap.record(DeviceCommand::MappingSwap { a: src, b: dst, at: now });
                        for h in [ha, hb].into_iter().flatten() {
                            self.translator.invalidate(h);
                        }
                        // The destination was reserved at enqueue; the
                        // vacated source becomes free.
                        self.alloc.complete_move(self.geo.location(src))?;
                    }
                }
                self.finish_hotness_job(channel, now)?;
            }
            None => return Err(DtlError::Internal { reason: format!("job {id} has no origin") }),
        }
        Ok(())
    }

    fn finish_hotness_job(&mut self, channel: u32, now: Picos) -> Result<(), DtlError> {
        let pending = self.hotness_pending.get_mut(&channel).ok_or(DtlError::Internal {
            reason: format!("hotness job finished with no pending plan on ch{channel}"),
        })?;
        pending.0 -= 1;
        if pending.0 == 0 {
            let (_, total) = self.hotness_pending.remove(&channel).expect("present above");
            let victim = self.hotness.on_plan_migrated(channel, now);
            self.enter_self_refresh(channel, victim, now)?;
            self.telemetry.emit(
                now.as_ps(),
                EventKind::SelfRefreshSwap { channel, victim, swaps: total as u32 },
            );
        }
        Ok(())
    }

    /// Takes a rank to self-refresh along legal edges only. From standby
    /// that is one hop; a rank the power policy already demoted walks the
    /// remaining rungs of the ladder (each hop issued at the previous
    /// hop's completion). Already-in-SR is a no-op.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] when the rank is in MPSM — a data-losing
    /// state no engine may silently refresh out of.
    fn enter_self_refresh(&mut self, channel: u32, rank: u32, now: Picos) -> Result<(), DtlError> {
        let mut at = now;
        loop {
            let next = match self.backend.rank_state(channel, rank) {
                PowerState::SelfRefresh => return Ok(()),
                PowerState::Standby | PowerState::PrechargePowerDown => PowerState::SelfRefresh,
                PowerState::ActivePowerDown => PowerState::PrechargePowerDown,
                PowerState::Mpsm => {
                    return Err(DtlError::Internal {
                        reason: format!("ch{channel}/rk{rank}: cannot self-refresh out of MPSM"),
                    });
                }
            };
            at = self.backend.set_rank_state(channel, rank, next, at)?;
        }
    }

    fn process_events(&mut self) {
        for ev in self.backend.drain_power_events() {
            self.tap.record(DeviceCommand::PowerTransition {
                channel: ev.channel,
                rank: ev.rank,
                from: ev.from,
                to: ev.to,
                cause: ev.cause,
                at: ev.at,
            });
            if ev.cause == PowerEventCause::AutoExit && ev.from == PowerState::SelfRefresh {
                self.hotness.on_sr_exit(ev.channel, ev.rank, ev.at);
            }
        }
    }

    /// Integrated power report from the backend.
    pub fn power_report(&mut self, now: Picos) -> PowerReport {
        self.backend.power_report(now)
    }

    /// Takes an operational snapshot (cheap; read-only).
    pub fn snapshot(&self) -> DeviceSnapshot {
        let mut ranks =
            Vec::with_capacity((self.geo.channels * self.geo.ranks_per_channel) as usize);
        for c in 0..self.geo.channels {
            for r in 0..self.geo.ranks_per_channel {
                let hotness = if self.hotness.sr_rank(c) == Some(r) {
                    HotnessRole::SelfRefreshing
                } else if self.hotness.victim(c) == Some(r) {
                    HotnessRole::Victim
                } else {
                    HotnessRole::None
                };
                let errors = self.health.counters(c, r);
                ranks.push(RankSnapshot {
                    channel: c,
                    rank: r,
                    power: self.backend.rank_state(c, r),
                    lifecycle: self.powerdown.rank_state(c, r),
                    hotness,
                    health: self.rank_health(c, r),
                    correctable_errors: errors.correctable,
                    uncorrectable_errors: errors.uncorrectable,
                    allocated_segments: self.alloc.allocated_in_rank(c, r),
                    free_segments: self.alloc.free_in_rank(c, r),
                    residency: self.backend.rank_residency(c, r),
                });
            }
        }
        let mut hosts: Vec<HostSnapshot> = self
            .hosts
            .iter()
            .map(|(h, state)| HostSnapshot {
                host: *h,
                vms: state.vms.len() as u32,
                aus: state.vms.values().map(|aus| aus.len() as u32).sum(),
            })
            .collect();
        hosts.sort_by_key(|h| h.host);
        DeviceSnapshot {
            ranks,
            hosts,
            mapped_segments: self.tables.mapped_segments(),
            migrations_pending: self.migrations_pending(),
            stats: self.stats,
            errors: self.health.stats(),
        }
    }

    /// Verifies cross-structure invariants; cheap enough for tests after
    /// every operation, and priceless when they fail.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] describing the first violation:
    /// * forward/reverse mapping consistency;
    /// * allocator free/allocated partitioning;
    /// * **no mapped (live) segment may sit in an MPSM rank** — MPSM loses
    ///   data;
    /// * every mapped segment is marked allocated.
    pub fn check_invariants(&self) -> Result<(), DtlError> {
        self.tables.check_consistency()?;
        self.alloc.check_consistency()?;
        for (dsn, hsn) in self.tables.iter_mapped() {
            let loc = self.geo.location(dsn);
            if self.backend.rank_state(loc.channel, loc.rank) == PowerState::Mpsm {
                return Err(DtlError::Internal {
                    reason: format!("live segment {dsn} ({hsn}) in MPSM rank {loc:?}"),
                });
            }
            if !self.alloc.is_allocated(loc) {
                return Err(DtlError::Internal {
                    reason: format!("mapped segment {dsn} not marked allocated"),
                });
            }
        }
        Ok(())
    }

    /// Dumps every engine's aggregate statistics into `registry` as
    /// monotonic counters (`device.*`, `smc.*`, `migrate.*`, `powerdown.*`,
    /// `hotness.*`, `health.*`). Counters are *set* to the current totals,
    /// so repeated exports are idempotent rather than additive.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let s = self.stats;
        registry.counter("device.accesses").set(s.accesses);
        registry.counter("device.writes").set(s.writes);
        registry.counter("device.rerouted_writes").set(s.rerouted_writes);
        registry.counter("device.aborting_writes").set(s.aborting_writes);
        registry.counter("device.vms_allocated").set(s.vms_allocated);
        registry.counter("device.vms_deallocated").set(s.vms_deallocated);
        registry.counter("device.capacity_wakes").set(s.capacity_wakes);
        registry.counter("device.migration_interrupts").set(s.migration_interrupts);
        registry.counter("device.auto_retirements").set(s.auto_retirements);
        let smc = self.smc_stats();
        registry.counter("smc.l1_hits").set(smc.l1_hits);
        registry.counter("smc.l1_misses").set(smc.l1_misses);
        registry.counter("smc.l2_hits").set(smc.l2_hits);
        registry.counter("smc.l2_misses").set(smc.l2_misses);
        let m = self.migration_stats();
        registry.counter("migrate.completed").set(m.completed);
        registry.counter("migrate.bytes_moved").set(m.bytes_moved);
        registry.counter("migrate.aborts").set(m.aborts);
        registry.counter("migrate.requeues").set(m.requeues);
        registry.counter("migrate.interrupts").set(m.interrupts);
        registry.counter("migrate.rollbacks").set(m.rollbacks);
        let pd = self.powerdown_stats();
        registry.counter("powerdown.groups_powered_down").set(pd.groups_powered_down);
        registry.counter("powerdown.groups_woken").set(pd.groups_woken);
        registry.counter("powerdown.segments_drained").set(pd.segments_drained);
        registry.counter("powerdown.ranks_retired").set(pd.ranks_retired);
        let h = self.hotness_stats();
        registry.counter("hotness.swaps_planned").set(h.swaps_planned);
        registry.counter("hotness.restores").set(h.restores);
        registry.counter("hotness.tsp_timeouts").set(h.tsp_timeouts);
        registry.counter("hotness.plans_frozen").set(h.plans_frozen);
        registry.counter("hotness.sr_entries").set(h.sr_entries);
        registry.counter("hotness.sr_exits").set(h.sr_exits);
        let he = self.health.stats();
        registry.counter("health.correctable_errors").set(he.correctable_errors);
        registry.counter("health.uncorrectable_errors").set(he.uncorrectable_errors);
        registry.counter("health.retire_trips").set(he.retire_trips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    /// Tiny device: 2 channels x 4 ranks x 32 segments (256 KiB segments,
    /// 8 MiB AUs of 32 segments = 16 per channel... AU = 32 segments).
    fn device() -> DtlDevice<AnalyticBackend> {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.register_host(HostId(0)).unwrap();
        dev
    }

    fn au_bytes() -> u64 {
        DtlConfig::tiny().au_bytes
    }

    #[test]
    fn vm_lifecycle_round_trip() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        assert_eq!(vm.aus.len(), 1);
        assert_eq!(vm.bytes, au_bytes());
        dev.check_invariants().unwrap();
        dev.dealloc_vm(vm.handle, Picos::from_us(1)).unwrap();
        assert!(matches!(
            dev.dealloc_vm(vm.handle, Picos::from_us(2)),
            Err(DtlError::UnknownVm(_))
        ));
        dev.check_invariants().unwrap();
    }

    /// Event-driven driving (tick only at `next_activity_at`) must reach
    /// the same logical end state as a fine tick grid: same migrations,
    /// same power-downs, same final mapping. (Residency is *better* under
    /// event driving — ranks transition at exact completion times instead
    /// of the next grid point — so only logical state is compared.)
    #[test]
    fn next_activity_walk_matches_tick_grid() {
        let horizon = Picos::from_ms(50);
        let drive = |event_driven: bool| {
            let mut dev = device();
            dev.set_hotness_enabled(false);
            let mut ticks = 0u32;
            let vms: Vec<_> = (0..4)
                .map(|i| dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(i)).expect("fits"))
                .collect();
            // Deallocating every other VM leaves two half-full ranks per
            // channel: the planner parks the empty ranks immediately and
            // must *drain* (copy) the straggler segments to consolidate
            // further — real migrations for the event walk to chase.
            dev.dealloc_vm(vms[1].handle, Picos::from_us(10)).unwrap();
            dev.dealloc_vm(vms[3].handle, Picos::from_us(10)).unwrap();
            if event_driven {
                while let Some(t) = dev.next_activity_at() {
                    if t > horizon {
                        break;
                    }
                    dev.tick(t.max(Picos::from_us(10))).unwrap();
                    ticks += 1;
                }
            } else {
                let mut t = Picos::from_us(10);
                while t < horizon {
                    t += Picos::from_us(25);
                    dev.tick(t).unwrap();
                    ticks += 1;
                }
            }
            dev.tick(horizon).unwrap();
            dev.check_invariants().unwrap();
            let mut mapping = dev.mapped_entries();
            mapping.sort();
            (
                dev.migration_stats().completed,
                dev.migration_stats().bytes_moved,
                dev.powerdown_stats().groups_powered_down,
                mapping,
                ticks,
            )
        };
        let (g_done, g_bytes, g_groups, g_map, g_ticks) = drive(false);
        let (e_done, e_bytes, e_groups, e_map, e_ticks) = drive(true);
        assert!(g_done > 0, "drains must actually run");
        assert!(g_groups > 0, "a rank group must park");
        assert_eq!((e_done, e_bytes, e_groups), (g_done, g_bytes, g_groups));
        assert_eq!(e_map, g_map, "same final mapping either way");
        assert!(e_ticks < g_ticks, "event walk ({e_ticks} ticks) must beat the grid ({g_ticks})");
    }

    #[test]
    fn admission_and_drain_histograms_observe_slo_inputs() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        let vms: Vec<_> = (0..4)
            .map(|i| dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(i)).expect("fits"))
            .collect();
        // An AU carved with no wakes: latency is exactly the table-carve
        // cost (one controller cycle per segment entry).
        let carve = dev.config().controller_cycle() * dev.config().segments_per_au();
        assert_eq!(dev.last_admission_latency(), carve);
        assert_eq!(dev.admission_histogram().count(), 4);
        // Deallocating every other VM leaves straggler segments the
        // planner must drain (copy): the backlog high-water must see the
        // queued drain copies.
        dev.dealloc_vm(vms[1].handle, Picos::from_us(10)).unwrap();
        dev.dealloc_vm(vms[3].handle, Picos::from_us(10)).unwrap();
        assert!(dev.migration_backlog_high_water() > 0);
        // Run the drains out and check their ages were observed.
        let mut t = Picos::from_us(30);
        for _ in 0..200 {
            dev.tick(t).unwrap();
            t += Picos::from_us(500);
        }
        assert!(dev.drain_age_histogram().count() > 0, "completed drains observed");
        assert!(dev.drain_age_histogram().percentile(100.0) > 0);
        // Force capacity wakes: admission latency must now include the
        // MPSM exit penalty on top of the carve cost.
        let big = 2 * 32 * dev.config().segment_bytes * 2;
        dev.alloc_vm(HostId(0), big, t).unwrap();
        assert!(dev.stats().capacity_wakes > 0);
        assert!(dev.last_admission_latency() > carve * (big / au_bytes()));
        assert_eq!(dev.admission_histogram().count(), 5);
    }

    #[test]
    fn unregistered_host_rejected() {
        let mut dev = device();
        assert!(matches!(
            dev.alloc_vm(HostId(3), au_bytes(), Picos::ZERO),
            Err(DtlError::UnknownHost(_))
        ));
        assert!(matches!(
            dev.access(HostId(3), HostPhysAddr::new(0), AccessKind::Read, Picos::ZERO),
            Err(DtlError::UnknownHost(_))
        ));
        // And hosts beyond max_hosts cannot register.
        assert!(matches!(dev.register_host(HostId(100)), Err(DtlError::TooManyHosts { .. })));
    }

    #[test]
    fn access_translates_and_counts() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, au_bytes());
        let out1 = dev.access(HostId(0), base, AccessKind::Read, Picos::from_us(1)).unwrap();
        assert_eq!(out1.smc, SmcOutcome::Miss, "cold translation");
        let out2 = dev
            .access(HostId(0), base.offset_by(64), AccessKind::Write, Picos::from_us(2))
            .unwrap();
        assert_eq!(out2.smc, SmcOutcome::L1Hit);
        assert_eq!(out2.dsn, out1.dsn, "same segment");
        assert!(out1.translation_latency > out2.translation_latency);
        let s = dev.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut dev = device();
        let _vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        // AU 5 was never allocated.
        let bad = HostPhysAddr::new(5 * au_bytes());
        assert!(matches!(
            dev.access(HostId(0), bad, AccessKind::Read, Picos::ZERO),
            Err(DtlError::UnmappedAddress { .. })
        ));
    }

    #[test]
    fn consecutive_segments_rotate_channels() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, au_bytes());
        let seg = dev.config().segment_bytes;
        let mut channels = Vec::new();
        for k in 0..4u64 {
            let out = dev
                .access(HostId(0), base.offset_by(k * seg), AccessKind::Read, Picos::from_us(k))
                .unwrap();
            channels.push(dev.geometry().location(out.dsn).channel);
        }
        assert_eq!(channels, vec![0, 1, 0, 1], "DTL interleaves channels per segment");
    }

    #[test]
    fn dealloc_triggers_rank_power_down() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        assert_eq!(dev.active_ranks(0), 4);
        dev.dealloc_vm(vm.handle, Picos::from_us(10)).unwrap();
        // Everything free: the engine should stack power-downs until one
        // active rank remains per channel.
        let mut t = Picos::from_us(20);
        for _ in 0..200 {
            dev.tick(t).unwrap();
            t += Picos::from_us(200);
            if dev.active_ranks(0) == 1 {
                break;
            }
            // Re-plan on every tick via dealloc-equivalent check.
        }
        // Power-down plans happen at dealloc; with an empty device the
        // while-loop in try_power_down stacks all three groups at once.
        assert_eq!(dev.active_ranks(0), 1);
        assert_eq!(dev.powerdown_stats().groups_powered_down, 3);
        for r in 1..4 {
            // Some subset of ranks is in MPSM (virtual groups).
            let _ = r;
        }
        dev.check_invariants().unwrap();
    }

    #[test]
    fn capacity_pressure_wakes_ranks() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        dev.dealloc_vm(vm.handle, Picos::from_us(10)).unwrap();
        assert_eq!(dev.active_ranks(0), 1);
        // One rank per channel = 32 segments/ch; an AU takes 16/ch. Two AUs
        // fit; the third forces a wake.
        let capacity_of_one_rank_group = 2 * 32 * dev.config().segment_bytes;
        let vm2 =
            dev.alloc_vm(HostId(0), capacity_of_one_rank_group * 2, Picos::from_us(20)).unwrap();
        assert!(dev.stats().capacity_wakes > 0);
        assert!(dev.active_ranks(0) > 1);
        dev.check_invariants().unwrap();
        dev.dealloc_vm(vm2.handle, Picos::from_us(30)).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn drain_migration_remaps_live_segments() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        // Two VMs; deallocating one leaves live data to drain eventually.
        let vm1 = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let vm2 = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let base2 = vm2.hpa_base(0, au_bytes());
        let before = dev.access(HostId(0), base2, AccessKind::Read, Picos::from_us(1)).unwrap().dsn;
        dev.dealloc_vm(vm1.handle, Picos::from_us(10)).unwrap();
        // Run migrations to completion.
        let mut t = Picos::from_us(20);
        for _ in 0..500 {
            dev.tick(t).unwrap();
            t += Picos::from_us(500);
            if dev.migration_stats().completed > 0 || dev.powerdown_stats().groups_powered_down > 2
            {
                // keep running a bit to finish everything
            }
        }
        dev.check_invariants().unwrap();
        // vm2's data must still be reachable (possibly remapped).
        let after = dev.access(HostId(0), base2, AccessKind::Read, t).unwrap().dsn;
        let _ = (before, after); // both valid translations; invariants hold
        assert!(dev.powerdown_stats().groups_powered_down >= 1);
    }

    #[test]
    fn hotness_cycle_reaches_self_refresh() {
        let mut dev = device();
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, au_bytes());
        let seg = dev.config().segment_bytes;
        // Hammer two segments per channel; leave the rest cold.
        let mut t = Picos::from_us(1);
        for round in 0..6000u64 {
            for k in 0..4u64 {
                dev.access(HostId(0), base.offset_by(k * seg), AccessKind::Read, t).unwrap();
            }
            t += Picos::from_us(1);
            if round % 16 == 0 {
                dev.tick(t).unwrap();
            }
        }
        // Let the idle threshold expire and migrations run.
        for _ in 0..100 {
            t += Picos::from_us(100);
            dev.tick(t).unwrap();
        }
        let hs = dev.hotness_stats();
        assert!(hs.plans_frozen > 0, "a plan must freeze: {hs:?}");
        assert!(hs.sr_entries > 0, "a victim must enter self-refresh: {hs:?}");
        dev.check_invariants().unwrap();
        // Some rank is actually in self-refresh at the backend.
        let mut any_sr = false;
        for c in 0..2 {
            for r in 0..4 {
                if dev.backend().rank_state(c, r) == PowerState::SelfRefresh {
                    any_sr = true;
                }
            }
        }
        assert!(any_sr);
    }

    #[test]
    fn sr_rank_wakes_on_access_and_reprofiles() {
        let mut dev = device();
        dev.set_powerdown_enabled(false);
        // Fill the whole device (8 AUs) so every rank holds live data and
        // the self-refresh victim can actually be woken by a host access.
        let vm = dev.alloc_vm(HostId(0), 8 * au_bytes(), Picos::ZERO).unwrap();
        assert_eq!(vm.aus.len(), 8);
        let base = vm.hpa_base(0, au_bytes());
        let seg = dev.config().segment_bytes;
        let mut t = Picos::from_us(1);
        for round in 0..6000u64 {
            for k in 0..4u64 {
                dev.access(HostId(0), base.offset_by(k * seg), AccessKind::Read, t).unwrap();
            }
            t += Picos::from_us(1);
            if round % 16 == 0 {
                dev.tick(t).unwrap();
            }
        }
        for _ in 0..200 {
            t += Picos::from_us(100);
            dev.tick(t).unwrap();
        }
        assert!(dev.hotness_stats().sr_entries > 0, "{:?}", dev.hotness_stats());
        // Touch every segment of every AU to guarantee hitting the victim.
        for (i, _au) in vm.aus.iter().enumerate() {
            let b = vm.hpa_base(i, au_bytes());
            for k in 0..dev.config().segments_per_au() {
                dev.access(HostId(0), b.offset_by(k * seg), AccessKind::Read, t).unwrap();
            }
        }
        dev.tick(t + Picos::from_us(1)).unwrap();
        assert!(dev.hotness_stats().sr_exits > 0, "{:?}", dev.hotness_stats());
        dev.check_invariants().unwrap();
    }

    #[test]
    fn au_ids_are_reused_after_dealloc() {
        let mut dev = device();
        dev.set_powerdown_enabled(false);
        dev.set_hotness_enabled(false);
        let vm1 = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let first_au = vm1.aus[0];
        dev.dealloc_vm(vm1.handle, Picos::from_us(1)).unwrap();
        let vm2 = dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(2)).unwrap();
        assert_eq!(vm2.aus[0], first_au, "freed AU ids are recycled");
    }

    #[test]
    fn multi_au_vm_spans_contiguous_hpa() {
        let mut dev = device();
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), 2 * au_bytes(), Picos::ZERO).unwrap();
        assert_eq!(vm.aus.len(), 2);
        assert_eq!(vm.bytes, 2 * au_bytes());
        // Every segment of both AUs translates.
        for (i, _au) in vm.aus.iter().enumerate() {
            let base = vm.hpa_base(i, au_bytes());
            dev.access(HostId(0), base, AccessKind::Read, Picos::from_us(1)).unwrap();
        }
        dev.check_invariants().unwrap();
    }

    #[test]
    fn full_device_is_out_of_capacity() {
        let mut dev = device();
        dev.set_powerdown_enabled(false);
        dev.set_hotness_enabled(false);
        // Device: 2ch x 4rk x 32 segs = 256 segments; AU = 32 segments.
        for _ in 0..8 {
            dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        }
        assert!(matches!(
            dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO),
            Err(DtlError::OutOfCapacity { .. })
        ));
        dev.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod retirement_tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    fn device() -> DtlDevice<AnalyticBackend> {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.register_host(HostId(0)).unwrap();
        dev
    }

    fn au_bytes() -> u64 {
        DtlConfig::tiny().au_bytes
    }

    fn drain(dev: &mut DtlDevice<AnalyticBackend>, from: Picos) -> Picos {
        let mut t = from;
        for _ in 0..200 {
            t += Picos::from_ms(1);
            dev.tick(t).unwrap();
            if dev.migrations_pending() == 0 {
                break;
            }
        }
        t
    }

    #[test]
    fn retiring_an_empty_rank_is_immediate() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        dev.retire_rank(0, 3, Picos::from_us(1)).unwrap();
        assert_eq!(dev.powerdown_stats().ranks_retired, 1);
        assert_eq!(dev.backend().rank_state(0, 3), PowerState::Mpsm);
        assert_eq!(dev.active_ranks(0), 3);
        dev.check_invariants().unwrap();
        // Retiring it twice is an error.
        assert!(dev.retire_rank(0, 3, Picos::from_us(2)).is_err());
    }

    #[test]
    fn retiring_a_loaded_rank_drains_it_first() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        // The VM's data landed in some rank; retire that rank.
        let out = dev
            .access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, Picos::from_us(1))
            .unwrap();
        let loc = dev.geometry().location(out.dsn);
        dev.retire_rank(loc.channel, loc.rank, Picos::from_us(2)).unwrap();
        let t = drain(&mut dev, Picos::from_us(3));
        assert_eq!(dev.powerdown_stats().ranks_retired, 1);
        assert_eq!(dev.backend().rank_state(loc.channel, loc.rank), PowerState::Mpsm);
        // The data is still reachable, now from a different rank.
        let out2 = dev.access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, t).unwrap();
        let loc2 = dev.geometry().location(out2.dsn);
        assert_ne!((loc2.channel, loc2.rank), (loc.channel, loc.rank));
        dev.check_invariants().unwrap();
    }

    #[test]
    fn retired_rank_is_never_woken_for_capacity() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.retire_rank(0, 3, Picos::from_us(1)).unwrap();
        dev.retire_rank(1, 3, Picos::from_us(1)).unwrap();
        // Fill the remaining capacity: 3 ranks x 32 segs x 2 ch = 192 segs
        // = 6 AUs of 32 segments.
        for _ in 0..6 {
            dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(2)).unwrap();
        }
        // The next allocation must fail rather than waking the retired rank.
        assert!(matches!(
            dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(3)),
            Err(DtlError::OutOfCapacity { .. })
        ));
        assert_eq!(dev.backend().rank_state(0, 3), PowerState::Mpsm);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn retirement_wakes_powered_down_groups_for_space() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        // One VM, then dealloc-driven power-down leaves 1 active rank/ch.
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let out = dev
            .access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, Picos::from_us(1))
            .unwrap();
        let loc = dev.geometry().location(out.dsn);
        let vm2 = dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(2)).unwrap();
        dev.dealloc_vm(vm2.handle, Picos::from_us(3)).unwrap();
        let t = drain(&mut dev, Picos::from_us(4));
        // Retire the rank holding vm's data: its channel has capacity only
        // in powered-down ranks, which must wake.
        dev.retire_rank(loc.channel, loc.rank, t).unwrap();
        let t = drain(&mut dev, t);
        assert_eq!(dev.backend().rank_state(loc.channel, loc.rank), PowerState::Mpsm);
        assert!(dev.stats().capacity_wakes > 0 || dev.active_ranks(loc.channel) >= 1);
        dev.access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, t).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn cannot_retire_last_active_rank() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        for r in [1u32, 2, 3] {
            dev.retire_rank(0, r, Picos::from_us(1)).unwrap();
        }
        assert!(dev.retire_rank(0, 0, Picos::from_us(2)).is_err());
        dev.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    fn device() -> DtlDevice<AnalyticBackend> {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.register_host(HostId(0)).unwrap();
        dev
    }

    fn au_bytes() -> u64 {
        DtlConfig::tiny().au_bytes
    }

    #[test]
    fn sparse_correctable_errors_stay_healthy() {
        let mut dev = device();
        for k in 0..10u64 {
            let h = dev.inject_correctable_error(0, 0, Picos::from_secs(10 * k)).unwrap();
            assert_eq!(h, RankHealth::Healthy);
        }
        assert_eq!(dev.health_stats().correctable_errors, 10);
        assert_eq!(dev.stats().auto_retirements, 0);
        assert_eq!(dev.rank_errors(0, 0).correctable, 10);
    }

    #[test]
    fn out_of_range_injections_rejected() {
        let mut dev = device();
        assert!(dev.inject_correctable_error(0, 9, Picos::ZERO).is_err());
        assert!(dev.inject_uncorrectable_error(5, 0, Picos::ZERO).is_err());
        assert!(dev.inject_migration_interrupt(7, Picos::ZERO).is_err());
    }

    #[test]
    fn error_storm_drives_victim_through_lifecycle() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let base = vm.hpa_base(0, au_bytes());
        // The AU spreads over both channels; find a rank holding live data.
        let out = dev.access(HostId(0), base, AccessKind::Read, Picos::from_us(1)).unwrap();
        let loc = dev.geometry().location(out.dsn);
        // Storm: one correctable error per millisecond on the victim.
        let mut t = Picos::from_us(10);
        let mut saw_degraded = false;
        let mut tripped = false;
        for _ in 0..40 {
            let h = dev.inject_correctable_error(loc.channel, loc.rank, t).unwrap();
            match h {
                RankHealth::Degraded => saw_degraded = true,
                RankHealth::Draining | RankHealth::Retired => {
                    tripped = true;
                    break;
                }
                RankHealth::Healthy => {}
            }
            t += Picos::from_ms(1);
        }
        assert!(saw_degraded, "the bucket passes through Degraded first");
        assert!(tripped, "a dense storm must trip retirement");
        assert_eq!(dev.stats().auto_retirements, 1);
        // Drain to completion: the victim ends Retired with nothing live.
        for _ in 0..200 {
            t += Picos::from_ms(1);
            dev.tick(t).unwrap();
            if dev.migrations_pending() == 0 {
                break;
            }
        }
        assert_eq!(dev.rank_health(loc.channel, loc.rank), RankHealth::Retired);
        let snap = dev.snapshot();
        let victim =
            snap.ranks.iter().find(|r| r.channel == loc.channel && r.rank == loc.rank).unwrap();
        assert_eq!(victim.health, RankHealth::Retired);
        assert_eq!(victim.allocated_segments, 0, "live segments migrated out");
        assert!(victim.correctable_errors >= 12);
        // The VM's data survived the retirement.
        let out2 = dev.access(HostId(0), base, AccessKind::Read, t).unwrap();
        let loc2 = dev.geometry().location(out2.dsn);
        assert_ne!((loc2.channel, loc2.rank), (loc.channel, loc.rank));
        dev.check_invariants().unwrap();
    }

    #[test]
    fn uncorrectable_error_reports_blast_radius() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let out = dev
            .access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, Picos::from_us(1))
            .unwrap();
        let loc = dev.geometry().location(out.dsn);
        let live = dev
            .snapshot()
            .ranks
            .iter()
            .find(|r| r.channel == loc.channel && r.rank == loc.rank)
            .unwrap()
            .allocated_segments;
        let report =
            dev.inject_uncorrectable_error(loc.channel, loc.rank, Picos::from_us(2)).unwrap();
        assert_eq!(report.segments_at_risk, live);
        assert_eq!(report.health, RankHealth::Degraded, "one uncorrectable degrades");
        // An empty rank has no blast radius.
        let empty = (0..4).find(|r| {
            dev.snapshot()
                .ranks
                .iter()
                .any(|s| s.channel == 0 && s.rank == *r && s.allocated_segments == 0)
        });
        if let Some(r) = empty {
            let rep = dev.inject_uncorrectable_error(0, r, Picos::from_us(3)).unwrap();
            assert_eq!(rep.segments_at_risk, 0);
        }
        dev.check_invariants().unwrap();
    }

    #[test]
    fn interrupted_drain_replays_and_still_retires() {
        let mut dev = device();
        dev.set_hotness_enabled(false);
        dev.set_powerdown_enabled(false);
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let out = dev
            .access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, Picos::from_us(1))
            .unwrap();
        let loc = dev.geometry().location(out.dsn);
        dev.retire_rank(loc.channel, loc.rank, Picos::from_us(2)).unwrap();
        // Interrupt the drain repeatedly while ticking; replay/rollback
        // must keep every structure consistent and the drain must still
        // finish.
        let mut t = Picos::from_us(3);
        let mut interrupted = 0u64;
        for round in 0..400u64 {
            t += Picos::from_us(200);
            dev.tick(t).unwrap();
            if round % 3 == 0 {
                let r = dev.inject_migration_interrupt(loc.channel, t).unwrap();
                if r != MigrationInterrupt::Idle {
                    interrupted += 1;
                }
            }
            dev.check_invariants().unwrap();
            if dev.migrations_pending() == 0 && dev.powerdown_stats().ranks_retired > 0 {
                break;
            }
        }
        assert!(interrupted > 0, "interrupts must hit in-flight drains");
        assert_eq!(dev.stats().migration_interrupts, interrupted);
        // Let any tail work finish.
        for _ in 0..200 {
            t += Picos::from_ms(1);
            dev.tick(t).unwrap();
            if dev.migrations_pending() == 0 {
                break;
            }
        }
        assert_eq!(dev.powerdown_stats().ranks_retired, 1, "drain survives interruptions");
        assert_eq!(dev.rank_health(loc.channel, loc.rank), RankHealth::Retired);
        dev.access(HostId(0), vm.hpa_base(0, au_bytes()), AccessKind::Read, t).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn interrupt_on_idle_channel_is_harmless() {
        let mut dev = device();
        let r = dev.inject_migration_interrupt(0, Picos::ZERO).unwrap();
        assert_eq!(r, MigrationInterrupt::Idle);
        assert_eq!(dev.stats().migration_interrupts, 0);
        dev.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    #[test]
    fn snapshot_reflects_device_state() {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.set_hotness_enabled(false);
        dev.register_host(HostId(0)).unwrap();
        dev.register_host(HostId(1)).unwrap();
        let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        let snap = dev.snapshot();
        assert_eq!(snap.ranks.len(), 8);
        assert_eq!(snap.hosts.len(), 2);
        assert_eq!(snap.hosts[0].vms, 1);
        assert_eq!(snap.hosts[0].aus, 1);
        assert_eq!(snap.hosts[1].vms, 0);
        assert_eq!(snap.mapped_segments, cfg.segments_per_au());
        let allocated: u64 = snap.ranks.iter().map(|r| r.allocated_segments).sum();
        assert_eq!(allocated, cfg.segments_per_au());
        let total: u64 = snap.ranks.iter().map(|r| r.allocated_segments + r.free_segments).sum();
        assert_eq!(total, 2 * 4 * 32);
        // Power-down after dealloc shows up in the snapshot.
        dev.dealloc_vm(vm.handle, Picos::from_us(1)).unwrap();
        for i in 0..100 {
            dev.tick(Picos::from_ms(1) * (i + 1)).unwrap();
        }
        let snap = dev.snapshot();
        assert!(snap
            .ranks
            .iter()
            .any(|r| r.power == PowerState::Mpsm && r.lifecycle == RankPdState::PoweredDown));
        assert_eq!(snap.mapped_segments, 0);
        // It serializes (management-plane export).
        let json = serde_json::to_string(&snap).unwrap();
        let back: DeviceSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let _ = AnalyticBackend::new(
            dev.geometry(),
            cfg.segment_bytes,
            dtl_dram::PowerParams::ddr4_128gb_dimm(),
        );
    }

    #[test]
    fn snapshot_shows_hotness_roles() {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.set_powerdown_enabled(false);
        dev.register_host(HostId(0)).unwrap();
        let _vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        // Let the hotness engine sample and park an idle victim.
        let mut t = Picos::from_us(1);
        for _ in 0..2000 {
            t += Picos::from_us(10);
            dev.tick(t).unwrap();
        }
        let snap = dev.snapshot();
        let sr = snap.ranks.iter().filter(|r| r.hotness == HotnessRole::SelfRefreshing).count();
        assert!(sr >= 1, "some rank should be self-refreshing: {snap:?}");
    }
}

#[cfg(test)]
mod write_conflict_tests {
    use super::*;

    /// Drives a live-data drain and hammers the migrating segments with
    /// writes: the §4.2 protocol must reroute completion-bit-window writes
    /// and abort jobs whose copied lines were dirtied — all visible
    /// through the device stats, with invariants intact throughout.
    #[test]
    fn foreground_writes_conflict_with_live_drains() {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.set_hotness_enabled(false);
        dev.register_host(HostId(0)).unwrap();
        // Fill rank A with vm1+vm2, rank B with vm3; dealloc vm2 and pump
        // power-down until a drain must move live data.
        let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        let vm3 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO).unwrap();
        dev.dealloc_vm(vm2.handle, Picos::from_us(1)).unwrap();
        // Drive ticks; each dealloc-free plan stacks, eventually draining a
        // loaded rank. Write continuously to vm1 and vm3 segments.
        let mut t = Picos::from_us(2);
        let seg = cfg.segment_bytes;
        let mut wrote_during_migration = false;
        for round in 0..4000u64 {
            t += Picos::from_us(2);
            if round % 8 == 0 {
                dev.tick(t).unwrap();
            }
            for vm in [&vm1, &vm3] {
                let base = vm.hpa_base(0, cfg.au_bytes);
                let hpa = base.offset_by((round % 32) * seg);
                dev.access(HostId(0), hpa, AccessKind::Write, t).unwrap();
            }
            if dev.migrations_pending() > 0 {
                wrote_during_migration = true;
            }
            // Keep re-triggering power-down planning via a dealloc cycle.
            if round == 100 {
                let vm4 = dev.alloc_vm(HostId(0), cfg.au_bytes, t).unwrap();
                dev.dealloc_vm(vm4.handle, t).unwrap();
            }
            dev.check_invariants().unwrap();
        }
        assert!(wrote_during_migration, "the scenario must overlap writes with drains");
        let s = dev.stats();
        assert!(
            s.aborting_writes + s.rerouted_writes > 0,
            "the conflict protocol must trigger: {s:?}"
        );
        assert!(dev.migration_stats().aborts == s.aborting_writes);
        // Everything still reachable afterwards.
        for _ in 0..200 {
            t += Picos::from_ms(1);
            dev.tick(t).unwrap();
        }
        for vm in [&vm1, &vm3] {
            for k in 0..32u64 {
                dev.access(
                    HostId(0),
                    vm.hpa_base(0, cfg.au_bytes).offset_by(k * seg),
                    AccessKind::Read,
                    t,
                )
                .unwrap();
            }
        }
        dev.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod balloon_tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    fn device() -> DtlDevice<AnalyticBackend> {
        let cfg = DtlConfig::tiny();
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.set_hotness_enabled(false);
        dev.register_host(HostId(0)).unwrap();
        dev
    }

    fn au_bytes() -> u64 {
        DtlConfig::tiny().au_bytes
    }

    #[test]
    fn grow_extends_the_vm() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        let new_aus = dev.grow_vm(vm.handle, 2 * au_bytes(), Picos::from_us(1)).unwrap();
        assert_eq!(new_aus.len(), 2);
        // All three AU regions translate.
        for au in vm.aus.iter().chain(new_aus.iter()) {
            let hpa = HostPhysAddr::new(u64::from(au.0) * au_bytes());
            dev.access(HostId(0), hpa, AccessKind::Read, Picos::from_us(2)).unwrap();
        }
        let snap = dev.snapshot();
        assert_eq!(snap.hosts[0].vms, 1);
        assert_eq!(snap.hosts[0].aus, 3);
        dev.check_invariants().unwrap();
        // Dealloc releases everything, including the grown AUs.
        dev.dealloc_vm(vm.handle, Picos::from_us(3)).unwrap();
        assert_eq!(dev.snapshot().mapped_segments, 0);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn shrink_releases_the_top_aus() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), 3 * au_bytes(), Picos::ZERO).unwrap();
        let kept = vm.aus[0];
        let dropped = vm.aus[2];
        dev.shrink_vm(vm.handle, 2, Picos::from_us(1)).unwrap();
        // The kept AU still works; the dropped one is unmapped.
        dev.access(
            HostId(0),
            HostPhysAddr::new(u64::from(kept.0) * au_bytes()),
            AccessKind::Read,
            Picos::from_us(2),
        )
        .unwrap();
        let err = dev.access(
            HostId(0),
            HostPhysAddr::new(u64::from(dropped.0) * au_bytes()),
            AccessKind::Read,
            Picos::from_us(3),
        );
        assert!(matches!(err, Err(DtlError::UnmappedAddress { .. })));
        dev.check_invariants().unwrap();
        // Shrinking to zero is refused; dealloc still works.
        assert!(dev.shrink_vm(vm.handle, 1, Picos::from_us(4)).is_err());
        dev.dealloc_vm(vm.handle, Picos::from_us(5)).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn shrink_can_trigger_power_down() {
        let mut dev = device();
        // Fill most of the device, then shrink hard: the freed capacity
        // lets a rank group power down.
        let vm = dev.alloc_vm(HostId(0), 6 * au_bytes(), Picos::ZERO).unwrap();
        assert_eq!(dev.powerdown_stats().groups_powered_down, 0);
        dev.shrink_vm(vm.handle, 5, Picos::from_us(1)).unwrap();
        let mut t = Picos::from_us(2);
        for _ in 0..200 {
            t += Picos::from_ms(1);
            dev.tick(t).unwrap();
        }
        assert!(dev.powerdown_stats().groups_powered_down > 0);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn quota_gates_alloc_and_grow() {
        let mut dev = device();
        dev.set_host_quota(HostId(0), Some(2)).unwrap();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        // A second AU fits; a third does not.
        dev.grow_vm(vm.handle, au_bytes(), Picos::from_us(1)).unwrap();
        assert!(matches!(
            dev.grow_vm(vm.handle, au_bytes(), Picos::from_us(2)),
            Err(DtlError::QuotaExceeded { .. })
        ));
        assert!(matches!(
            dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(3)),
            Err(DtlError::QuotaExceeded { .. })
        ));
        // Shrinking frees quota headroom.
        dev.shrink_vm(vm.handle, 1, Picos::from_us(4)).unwrap();
        dev.alloc_vm(HostId(0), au_bytes(), Picos::from_us(5)).unwrap();
        // Clearing the quota lifts the cap.
        dev.set_host_quota(HostId(0), None).unwrap();
        dev.alloc_vm(HostId(0), 2 * au_bytes(), Picos::from_us(6)).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn quota_does_not_affect_other_hosts() {
        let mut dev = device();
        dev.register_host(HostId(1)).unwrap();
        dev.set_host_quota(HostId(0), Some(1)).unwrap();
        dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        assert!(dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).is_err());
        // Host 1 is unconstrained.
        dev.alloc_vm(HostId(1), 3 * au_bytes(), Picos::ZERO).unwrap();
        dev.check_invariants().unwrap();
    }

    #[test]
    fn grow_of_stale_handle_rejected() {
        let mut dev = device();
        let vm = dev.alloc_vm(HostId(0), au_bytes(), Picos::ZERO).unwrap();
        dev.dealloc_vm(vm.handle, Picos::from_us(1)).unwrap();
        assert!(matches!(
            dev.grow_vm(vm.handle, au_bytes(), Picos::from_us(2)),
            Err(DtlError::UnknownVm(_))
        ));
        assert!(matches!(
            dev.shrink_vm(vm.handle, 1, Picos::from_us(3)),
            Err(DtlError::UnknownVm(_))
        ));
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use dtl_dram::REFRESH_POSTPONE_BUDGET;

    fn device_with(policy: PowerPolicyKind) -> DtlDevice<AnalyticBackend> {
        let mut cfg = DtlConfig::tiny();
        cfg.power_policy = policy;
        let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
        dev.register_host(HostId(0)).unwrap();
        dev.set_hotness_enabled(false);
        dev
    }

    fn residency(report: &PowerReport, c: usize, r: usize, s: PowerState) -> Picos {
        report.residency[c][r][PowerState::ALL.iter().position(|x| *x == s).unwrap()]
    }

    /// Satellite 4 regression: parking a rank that sits below standby on
    /// the retention ladder must bridge through standby at the *exit
    /// completion* time. The MPSM entry used to be issued at the request
    /// instant, back-dating it into the exit window: an out-of-order
    /// command stream, and the 5 ns standby bridge silently charged to
    /// the deeper state.
    #[test]
    fn parking_ladder_ranks_orders_events_and_charges_the_bridge() {
        let mut dev = device_with(PowerPolicyKind::FixedThreshold);
        dev.backend_mut().set_rank_state(0, 1, PowerState::SelfRefresh, Picos::ZERO).unwrap();
        dev.backend_mut().set_rank_state(0, 2, PowerState::ActivePowerDown, Picos::ZERO).unwrap();
        dev.set_command_tap(true);
        dev.drain_commands(); // discard the setup transitions

        let park = Picos::from_us(1);
        dev.request_power_down(park).unwrap();

        // Per-rank command streams must be time-ordered and coherent.
        let cmds = dev.drain_commands();
        let mut last_at: HashMap<(u32, u32), (Picos, PowerState)> = HashMap::new();
        for cmd in &cmds {
            if let DeviceCommand::PowerTransition { channel, rank, from, to, at, .. } = cmd {
                if let Some((prev_at, prev_to)) = last_at.get(&(*channel, *rank)) {
                    assert!(at >= prev_at, "rank ch{channel}/rk{rank} stream out of order");
                    assert_eq!(from, prev_to, "rank ch{channel}/rk{rank} stream incoherent");
                }
                last_at.insert((*channel, *rank), (*at, *to));
            }
        }
        // Self-refresh exit takes 560 ns, then a 5 ns MPSM entry.
        assert_eq!(last_at[&(0, 1)].0, park + Picos::from_ns(565));
        assert_eq!(last_at[&(0, 1)].1, PowerState::Mpsm);
        // Shallow exit takes 7 ns, then the same 5 ns entry.
        assert_eq!(last_at[&(0, 2)].0, park + Picos::from_ns(12));

        // The standby bridge lands in standby, exactly once: 5 ns initial
        // entry window plus the 5 ns bridge, and every picosecond of the
        // horizon in exactly one state.
        let horizon = Picos::from_us(2);
        let report = dev.backend_mut().power_report(horizon);
        assert_eq!(residency(&report, 0, 1, PowerState::Standby), Picos::from_ns(10));
        assert_eq!(
            residency(&report, 0, 1, PowerState::SelfRefresh),
            Picos::from_ns(1560) - Picos::from_ns(5)
        );
        assert_eq!(
            residency(&report, 0, 1, PowerState::Mpsm),
            horizon - park - Picos::from_ns(565)
        );
        let total: Picos = PowerState::ALL.iter().map(|s| residency(&report, 0, 1, *s)).sum();
        assert_eq!(total, horizon);
        dev.check_invariants().unwrap();
    }

    /// The adaptive policy walks idle ranks one rung per pump down
    /// standby -> active power-down -> precharge power-down ->
    /// self-refresh, and the next access wakes them transparently.
    #[test]
    fn adaptive_policy_demotes_idle_ranks_and_access_wakes_them() {
        let mut dev = device_with(PowerPolicyKind::AdaptiveDemotion);
        assert_eq!(dev.power_policy(), PowerPolicyKind::AdaptiveDemotion);
        // Cold history: the threshold floor is base/64 ~ 7.8 us (tiny
        // profile_threshold = 500 us), scaled 4x per rung.
        dev.tick(Picos::from_us(10)).unwrap();
        assert_eq!(dev.backend().rank_state(0, 0), PowerState::ActivePowerDown);
        dev.tick(Picos::from_us(40)).unwrap();
        assert_eq!(dev.backend().rank_state(0, 0), PowerState::PrechargePowerDown);
        dev.tick(Picos::from_us(130)).unwrap();
        assert_eq!(dev.backend().rank_state(0, 0), PowerState::SelfRefresh);
        // Every rank bottomed out: 8 ranks x 3 rungs.
        assert_eq!(dev.policy_demotions(), 24);
        dev.check_invariants().unwrap();

        let vm = dev.alloc_vm(HostId(0), dev.config().au_bytes, Picos::from_us(200)).unwrap();
        let hpa = vm.hpa_base(0, dev.config().au_bytes);
        let out = dev.access(HostId(0), hpa, AccessKind::Read, Picos::from_us(200)).unwrap();
        let loc = dev.geometry().location(out.dsn);
        assert_eq!(dev.backend().rank_state(loc.channel, loc.rank), PowerState::Standby);
    }

    /// Fixed threshold is bit-compatible: the pump never fires, and the
    /// event-driven deadline only appears once a real policy is active.
    #[test]
    fn fixed_threshold_is_inert_and_switching_arms_the_pump() {
        let mut dev = device_with(PowerPolicyKind::FixedThreshold);
        assert_eq!(dev.next_activity_at(), None);
        dev.tick(Picos::from_ms(1)).unwrap();
        assert_eq!(dev.policy_demotions(), 0);
        assert_eq!(dev.backend().rank_state(0, 0), PowerState::Standby);

        dev.set_power_policy(PowerPolicyKind::AdaptiveDemotion);
        let deadline = dev.next_activity_at().expect("a policy deadline must appear");
        assert!(deadline <= Picos::from_ms(1) + Picos::from_us(8));
        dev.tick(Picos::from_ms(1) + Picos::from_us(10)).unwrap();
        assert!(dev.policy_demotions() > 0);
        assert_eq!(dev.backend().rank_state(0, 0), PowerState::ActivePowerDown);
    }

    /// Refresh postponement is the refresh-aware policy's lever alone:
    /// other policies decline, the budget caps grants, and out-of-range
    /// coordinates are rejected.
    #[test]
    fn refresh_postponement_respects_policy_and_budget() {
        let mut dev = device_with(PowerPolicyKind::FixedThreshold);
        assert!(!dev.postpone_refresh(0, 0, Picos::from_us(1)).unwrap());

        dev.set_power_policy(PowerPolicyKind::RefreshAware);
        for i in 0..u64::from(REFRESH_POSTPONE_BUDGET) {
            assert!(
                dev.postpone_refresh(0, 0, Picos::from_us(1 + i)).unwrap(),
                "grant {i} within budget"
            );
        }
        assert!(!dev.postpone_refresh(0, 0, Picos::from_us(20)).unwrap());
        assert!(dev.postpone_refresh(9, 9, Picos::from_us(21)).is_err());
    }
}
