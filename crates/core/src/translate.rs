//! The HPA→DPA translation path (paper §3.2 and Figure 4): HSN field
//! split, the two-level segment mapping cache, the three-level table walk
//! on a miss, and the per-outcome latency model.
//!
//! Latencies follow §6.1: an L1 SMC hit costs one controller cycle; an L2
//! hit costs 7 more; a full miss walks the host base address table and the
//! AU base address table (one SRAM cycle each) and then reads the segment
//! mapping table in reserved DRAM.

use dtl_dram::Picos;
use serde::{Deserialize, Serialize};

use crate::addr::{AuId, Dsn, HostId, HostPhysAddr, Hsn};
use crate::config::DtlConfig;
use crate::error::DtlError;
use crate::smc::{SegmentMappingCache, SmcOutcome, SmcStats};
use crate::tables::MappingTables;

/// Latency constants of the translation path, in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationLatency {
    /// One controller clock period.
    pub cycle: Picos,
    /// L1 SMC hit, cycles (paper: 1).
    pub l1_hit_cycles: u64,
    /// Additional cycles for an L2 hit (paper: 7).
    pub l2_hit_cycles: u64,
    /// SRAM cycles of the miss walk before the DRAM read (paper: 2).
    pub walk_sram_cycles: u64,
}

impl TranslationLatency {
    /// The paper's §6.1 constants at the configured controller clock.
    pub fn paper(config: &DtlConfig) -> Self {
        TranslationLatency {
            cycle: config.controller_cycle(),
            l1_hit_cycles: 1,
            l2_hit_cycles: 7,
            walk_sram_cycles: 2,
        }
    }

    /// The latency of a lookup with the given outcome; `dram_access` is the
    /// raw DRAM latency paid by a full miss.
    pub fn of(&self, outcome: SmcOutcome, dram_access: Picos) -> Picos {
        match outcome {
            SmcOutcome::L1Hit => self.cycle * self.l1_hit_cycles,
            SmcOutcome::L2Hit => self.cycle * (self.l1_hit_cycles + self.l2_hit_cycles),
            SmcOutcome::Miss => {
                self.cycle * (self.l1_hit_cycles + self.l2_hit_cycles + self.walk_sram_cycles)
                    + dram_access
            }
        }
    }
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// The host segment number that was translated.
    pub hsn: Hsn,
    /// The device segment it maps to.
    pub dsn: Dsn,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Where the lookup was satisfied.
    pub smc: SmcOutcome,
    /// Latency of this lookup.
    pub latency: Picos,
}

/// The translation front end: SMC over the mapping tables.
#[derive(Debug)]
pub struct Translator {
    smc: SegmentMappingCache,
    latency: TranslationLatency,
    au_bytes: u64,
    segment_bytes: u64,
}

impl Translator {
    /// Builds the translator from the DTL configuration.
    pub fn new(config: &DtlConfig) -> Self {
        Translator {
            smc: SegmentMappingCache::new(
                config.smc_l1_entries,
                config.smc_l2_entries,
                config.smc_l2_ways,
            ),
            latency: TranslationLatency::paper(config),
            au_bytes: config.au_bytes,
            segment_bytes: config.segment_bytes,
        }
    }

    /// Splits an HPA into its HSN fields (Figure 4: host ID | AU ID | AU
    /// offset) plus the byte offset within the segment.
    pub fn hsn_of(&self, host: HostId, hpa: HostPhysAddr) -> (Hsn, u64) {
        let au = AuId((hpa.as_u64() / self.au_bytes) as u32);
        let au_offset = (hpa.as_u64() % self.au_bytes) / self.segment_bytes;
        (Hsn { host, au, au_offset: au_offset as u32 }, hpa.as_u64() % self.segment_bytes)
    }

    /// Translates one access, filling the SMC on a miss. `dram_access` is
    /// the backend's raw access latency (the miss-walk DRAM read).
    ///
    /// # Errors
    ///
    /// [`DtlError::UnmappedAddress`] when the HSN has no mapping.
    pub fn translate(
        &mut self,
        host: HostId,
        hpa: HostPhysAddr,
        tables: &MappingTables,
        dram_access: Picos,
    ) -> Result<Translation, DtlError> {
        let (hsn, offset) = self.hsn_of(host, hpa);
        let (smc, cached) = self.smc.lookup(hsn);
        let dsn = match cached {
            Some(d) => d,
            None => {
                let d = tables.translate(hsn).ok_or(DtlError::UnmappedAddress { host, hpa })?;
                self.smc.fill(hsn, d);
                d
            }
        };
        Ok(Translation { hsn, dsn, offset, smc, latency: self.latency.of(smc, dram_access) })
    }

    /// Invalidates a translation after a remap.
    pub fn invalidate(&mut self, hsn: Hsn) -> bool {
        self.smc.invalidate(hsn)
    }

    /// SMC statistics.
    pub fn stats(&self) -> SmcStats {
        self.smc.stats()
    }

    /// The latency constants in effect.
    pub fn latency_model(&self) -> TranslationLatency {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Translator, MappingTables, DtlConfig) {
        let cfg = DtlConfig::tiny();
        let mut tables = MappingTables::new(cfg.segments_per_au());
        tables.register_host(HostId(0));
        let dsns: Vec<Dsn> = (0..cfg.segments_per_au()).map(Dsn).collect();
        tables.create_au(HostId(0), AuId(0), dsns).unwrap();
        (Translator::new(&cfg), tables, cfg)
    }

    #[test]
    fn hsn_split_matches_figure_4() {
        let (t, _, cfg) = setup();
        let hpa = HostPhysAddr::new(cfg.au_bytes * 3 + cfg.segment_bytes * 5 + 1234);
        let (hsn, off) = t.hsn_of(HostId(2), hpa);
        assert_eq!(hsn.host, HostId(2));
        assert_eq!(hsn.au, AuId(3));
        assert_eq!(hsn.au_offset, 5);
        assert_eq!(off, 1234);
    }

    #[test]
    fn miss_then_hit_latencies_follow_section_6_1() {
        let (mut t, tables, cfg) = setup();
        let dram = Picos::from_ns(121);
        let hpa = HostPhysAddr::new(cfg.segment_bytes * 7);
        let first = t.translate(HostId(0), hpa, &tables, dram).unwrap();
        assert_eq!(first.smc, SmcOutcome::Miss);
        assert_eq!(first.dsn, Dsn(7));
        // Miss = 10 controller cycles + the DRAM read.
        let cyc = cfg.controller_cycle();
        assert_eq!(first.latency, cyc * 10 + dram);
        let second = t.translate(HostId(0), hpa, &tables, dram).unwrap();
        assert_eq!(second.smc, SmcOutcome::L1Hit);
        assert_eq!(second.latency, cyc);
        assert_eq!(second.dsn, Dsn(7));
    }

    #[test]
    fn l2_hit_costs_eight_cycles() {
        let (mut t, tables, cfg) = setup();
        let dram = Picos::from_ns(121);
        // Evict the target from the tiny 8-entry L1 by touching many others.
        let target = HostPhysAddr::new(0);
        t.translate(HostId(0), target, &tables, dram).unwrap();
        for k in 1..=16u64 {
            t.translate(HostId(0), HostPhysAddr::new(cfg.segment_bytes * k), &tables, dram)
                .unwrap();
        }
        let again = t.translate(HostId(0), target, &tables, dram).unwrap();
        assert_eq!(again.smc, SmcOutcome::L2Hit);
        assert_eq!(again.latency, cfg.controller_cycle() * 8);
    }

    #[test]
    fn unmapped_rejected_and_not_cached() {
        let (mut t, tables, cfg) = setup();
        let bad = HostPhysAddr::new(cfg.au_bytes * 9);
        for _ in 0..2 {
            let err = t.translate(HostId(0), bad, &tables, Picos::from_ns(121));
            assert!(matches!(err, Err(DtlError::UnmappedAddress { .. })));
        }
        assert_eq!(t.stats().l2_misses, 2, "unmapped lookups never fill the SMC");
    }

    #[test]
    fn invalidate_forces_rewalk() {
        let (mut t, mut tables, cfg) = setup();
        let dram = Picos::from_ns(121);
        let hpa = HostPhysAddr::new(0);
        let first = t.translate(HostId(0), hpa, &tables, dram).unwrap();
        assert_eq!(first.dsn, Dsn(0));
        // Remap HSN 0 to a new DSN and invalidate.
        let hsn = first.hsn;
        tables.remap(hsn, Dsn(999)).unwrap();
        assert!(t.invalidate(hsn));
        let again = t.translate(HostId(0), hpa, &tables, dram).unwrap();
        assert_eq!(again.smc, SmcOutcome::Miss);
        assert_eq!(again.dsn, Dsn(999));
        let _ = cfg;
    }
}
