//! Hardware-cost models for the DTL controller: structure sizing (paper
//! Table 5) and power/area estimation (paper Table 6).
//!
//! Structure sizes are computed from first principles (field bit widths ×
//! entry counts); power and area use the paper's methodology — synthesis
//! anchors scaled with technology as `(tech)^2` per Biswas & Chandrakasan —
//! with the 40 nm anchors back-derived from the published 7 nm numbers.

use serde::{Deserialize, Serialize};

/// Inputs of the overhead models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// CXL device capacity in bytes.
    pub capacity_bytes: u64,
    /// Translation segment size.
    pub segment_bytes: u64,
    /// Allocation unit size.
    pub au_bytes: u64,
    /// Hosts supported.
    pub max_hosts: u16,
    /// L1 segment mapping cache entries.
    pub smc_l1_entries: u64,
    /// L2 segment mapping cache entries.
    pub smc_l2_entries: u64,
}

impl OverheadConfig {
    /// The paper's 384 GB sizing point (Table 5, left column): 16 hosts,
    /// 64-entry L1 SMC.
    pub fn paper_384gb() -> Self {
        OverheadConfig {
            capacity_bytes: 384 << 30,
            segment_bytes: 2 << 20,
            au_bytes: 2 << 30,
            max_hosts: 16,
            smc_l1_entries: 64,
            smc_l2_entries: 1024,
        }
    }

    /// The paper's 4 TB sizing point (Table 5, right column): 16 hosts,
    /// 128-entry L1 SMC.
    pub fn paper_4tb() -> Self {
        OverheadConfig {
            capacity_bytes: 4 << 40,
            segment_bytes: 2 << 20,
            au_bytes: 2 << 30,
            max_hosts: 16,
            smc_l1_entries: 128,
            smc_l2_entries: 1024,
        }
    }

    /// Total segments in the device.
    pub fn segments(&self) -> u64 {
        self.capacity_bytes / self.segment_bytes
    }

    /// Total allocation units in the device.
    pub fn aus(&self) -> u64 {
        self.capacity_bytes / self.au_bytes
    }

    /// Bits needed to name a device segment (DSN width).
    pub fn dsn_bits(&self) -> u32 {
        bits_for(self.segments())
    }

    /// Bits of a packed HSN: host + AU id + AU offset.
    pub fn hsn_bits(&self) -> u32 {
        bits_for(u64::from(self.max_hosts))
            + bits_for(self.aus())
            + bits_for(self.au_bytes / self.segment_bytes)
    }
}

fn bits_for(count: u64) -> u32 {
    64 - count.next_power_of_two().leading_zeros() - 1
}

/// Structure sizes in bytes (paper Table 5).
///
/// # Examples
///
/// ```
/// use dtl_core::{OverheadConfig, StructureSizes};
///
/// let sizes = StructureSizes::compute(&OverheadConfig::paper_384gb());
/// // The paper's headline: ~0.5 MB of on-chip SRAM for a 384 GB device.
/// assert!(sizes.sram_total() < 600 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructureSizes {
    /// L1 segment mapping cache.
    pub l1_smc_bytes: u64,
    /// L2 segment mapping cache.
    pub l2_smc_bytes: u64,
    /// Host base address table (SRAM).
    pub host_table_bytes: u64,
    /// AU base address tables (SRAM).
    pub au_table_bytes: u64,
    /// Hot-cold migration table (SRAM).
    pub migration_table_bytes: u64,
    /// Segment mapping table (reserved DRAM).
    pub segment_mapping_bytes: u64,
    /// Reverse mapping table (reserved DRAM).
    pub reverse_mapping_bytes: u64,
    /// Free segment queues (reserved DRAM).
    pub free_queue_bytes: u64,
    /// Allocated segment queues (reserved DRAM).
    pub allocated_queue_bytes: u64,
    /// Free AU queue (reserved DRAM).
    pub free_au_queue_bytes: u64,
}

impl StructureSizes {
    /// Computes every structure from the configuration.
    pub fn compute(cfg: &OverheadConfig) -> Self {
        let dsn = u64::from(cfg.dsn_bits());
        let hsn = u64::from(cfg.hsn_bits());
        // SMC entry: HSN tag + DSN + valid + ~2 LRU bits.
        let smc_entry_bits = hsn + dsn + 3;
        // Host base address table entry: a pointer into the AU-table SRAM
        // plus bounds metadata (~64 bits + valid), 16 entries.
        let host_entry_bits = 69u64;
        // AU table entry: base pointer of the AU's segment-map region in
        // reserved DRAM (~physical address width) + valid.
        let au_entry_bits = 65u64;
        // Migration table entry: access bit + rank + within-rank segment
        // number = 1 + dsn (rank+within together address a segment).
        let mig_entry_bits = 1 + dsn;
        // Segment mapping table: one DSN (+ valid) per mapped segment.
        let segmap_entry_bits = dsn + 1;
        // Reverse mapping: one HSN (+ valid) per device segment.
        let rev_entry_bits = hsn + 1;
        // Free/allocated queues: one DSN entry per segment.
        let queue_entry_bits = dsn;
        // Free AU queue: one AU id per AU.
        let au_queue_entry_bits = u64::from(bits_for(cfg.aus())) + 1;
        let to_bytes = |bits: u64| bits.div_ceil(8);
        StructureSizes {
            l1_smc_bytes: to_bytes(smc_entry_bits * cfg.smc_l1_entries),
            l2_smc_bytes: to_bytes(smc_entry_bits * cfg.smc_l2_entries),
            host_table_bytes: to_bytes(host_entry_bits * u64::from(cfg.max_hosts)),
            au_table_bytes: to_bytes(au_entry_bits * cfg.aus() * u64::from(cfg.max_hosts)),
            migration_table_bytes: to_bytes(mig_entry_bits * cfg.segments()),
            segment_mapping_bytes: to_bytes(segmap_entry_bits * cfg.segments()),
            reverse_mapping_bytes: to_bytes(rev_entry_bits * cfg.segments()),
            free_queue_bytes: to_bytes(queue_entry_bits * cfg.segments()),
            allocated_queue_bytes: to_bytes(queue_entry_bits * cfg.segments()),
            free_au_queue_bytes: to_bytes(au_queue_entry_bits * cfg.aus()),
        }
    }

    /// Total on-chip SRAM (caches + tables).
    pub fn sram_total(&self) -> u64 {
        self.l1_smc_bytes
            + self.l2_smc_bytes
            + self.host_table_bytes
            + self.au_table_bytes
            + self.migration_table_bytes
    }

    /// Total reserved-DRAM metadata.
    pub fn dram_total(&self) -> u64 {
        self.segment_mapping_bytes
            + self.reverse_mapping_bytes
            + self.free_queue_bytes
            + self.allocated_queue_bytes
            + self.free_au_queue_bytes
    }
}

/// Controller power and area (paper Table 6), at a given technology node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerCost {
    /// Segment mapping cache power, mW.
    pub smc_mw: f64,
    /// Other SRAM structures power, mW.
    pub sram_mw: f64,
    /// Quad Cortex-R5 microprocessor power, mW.
    pub cpu_mw: f64,
    /// Segment mapping cache area, mm².
    pub smc_mm2: f64,
    /// SRAM area, mm².
    pub sram_mm2: f64,
    /// Microprocessor area, mm².
    pub cpu_mm2: f64,
}

impl ControllerCost {
    /// Estimates at 7 nm following the paper's methodology. Anchors: the
    /// quad-R5 synthesizes to 0.8 W / 5.4 mm² at 40 nm & 1.5 GHz; SRAM
    /// power follows a sub-linear (leakage-dominated banking) law fitted to
    /// CACTI-P behaviour; everything scales with `(7/40)^2`.
    pub fn estimate_7nm(sizes: &StructureSizes) -> Self {
        let smc_kb = (sizes.l1_smc_bytes + sizes.l2_smc_bytes) as f64 / 1024.0;
        let sram_mb = (sizes.sram_total() - sizes.l1_smc_bytes - sizes.l2_smc_bytes) as f64
            / (1024.0 * 1024.0);
        // CACTI-like: small caches pay a fixed access-port cost plus a weak
        // size term; big SRAM power grows sub-linearly with banking.
        let smc_mw = 1.55 + 0.028 * smc_kb;
        let sram_mw = 4.55 * sram_mb.max(0.01).powf(0.65);
        let cpu_mw = 21.2;
        let smc_mm2 = 0.0033 + 0.00006 * smc_kb;
        let sram_mm2 = 0.21 * sram_mb;
        let cpu_mm2 = 0.0515;
        ControllerCost { smc_mw, sram_mw, cpu_mw, smc_mm2, sram_mm2, cpu_mm2 }
    }

    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.smc_mw + self.sram_mw + self.cpu_mw
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.smc_mm2 + self.sram_mm2 + self.cpu_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(196_608), 18); // 384 GB / 2 MB
    }

    #[test]
    fn table5_384gb_within_tolerance() {
        let s = StructureSizes::compute(&OverheadConfig::paper_384gb());
        // Paper values: 328 B, 5.1 KB, 138 B, 24.4 KB, 432 KB, 456 KB,
        // 552 KB, 432 KB, 432 KB, 192 B.
        assert!(within(s.l1_smc_bytes as f64, 328.0, 0.25), "L1 {}", s.l1_smc_bytes);
        assert!(within(s.l2_smc_bytes as f64, 5.1 * 1024.0, 0.25), "L2 {}", s.l2_smc_bytes);
        assert!(within(s.host_table_bytes as f64, 138.0, 0.25), "host {}", s.host_table_bytes);
        assert!(within(s.au_table_bytes as f64, 24.4 * 1024.0, 0.25), "au {}", s.au_table_bytes);
        assert!(
            within(s.migration_table_bytes as f64, 432.0 * 1024.0, 0.25),
            "mig {}",
            s.migration_table_bytes
        );
        assert!(
            within(s.segment_mapping_bytes as f64, 456.0 * 1024.0, 0.25),
            "segmap {}",
            s.segment_mapping_bytes
        );
        assert!(
            within(s.reverse_mapping_bytes as f64, 552.0 * 1024.0, 0.25),
            "rev {}",
            s.reverse_mapping_bytes
        );
        assert!(
            within(s.free_queue_bytes as f64, 432.0 * 1024.0, 0.25),
            "freeq {}",
            s.free_queue_bytes
        );
        assert!(within(s.free_au_queue_bytes as f64, 192.0, 0.35), "auq {}", s.free_au_queue_bytes);
        // Paper: "total on-chip SRAM 0.5 MB, DRAM structures 1.9 MB".
        assert!(within(s.sram_total() as f64, 0.5 * 1024.0 * 1024.0, 0.25));
        assert!(within(s.dram_total() as f64, 1.9 * 1024.0 * 1024.0, 0.25));
    }

    #[test]
    fn table5_4tb_within_tolerance() {
        let s = StructureSizes::compute(&OverheadConfig::paper_4tb());
        assert!(within(s.l1_smc_bytes as f64, 752.0, 0.3), "L1 {}", s.l1_smc_bytes);
        assert!(within(s.l2_smc_bytes as f64, 5.9 * 1024.0, 0.3), "L2 {}", s.l2_smc_bytes);
        assert!(within(s.au_table_bytes as f64, 260.0 * 1024.0, 0.3), "au {}", s.au_table_bytes);
        assert!(
            within(s.migration_table_bytes as f64, 5.0 * 1024.0 * 1024.0, 0.3),
            "mig {}",
            s.migration_table_bytes
        );
        // Paper: SRAM 0.5 -> 5.3 MB, DRAM 1.9 -> 22.6 MB.
        assert!(within(s.sram_total() as f64, 5.3 * 1024.0 * 1024.0, 0.3));
        assert!(within(s.dram_total() as f64, 22.6 * 1024.0 * 1024.0, 0.3));
        // And the paper's headline: metadata is ~0.0005% of 4 TB.
        let frac = s.dram_total() as f64 / (4u64 << 40) as f64;
        assert!(frac < 1e-5, "metadata fraction {frac}");
    }

    #[test]
    fn table6_power_area_within_tolerance() {
        let s384 = StructureSizes::compute(&OverheadConfig::paper_384gb());
        let c384 = ControllerCost::estimate_7nm(&s384);
        // Paper: 1.7 + 2.9 + 21.2 = 25.7 mW; 0.165 mm².
        assert!(within(c384.total_mw(), 25.7, 0.15), "384GB power {}", c384.total_mw());
        assert!(within(c384.total_mm2(), 0.165, 0.35), "384GB area {}", c384.total_mm2());
        let s4t = StructureSizes::compute(&OverheadConfig::paper_4tb());
        let c4t = ControllerCost::estimate_7nm(&s4t);
        // Paper: 2.1 + 13.0 + 21.2 = 36.2 mW; 1.1 mm².
        assert!(within(c4t.total_mw(), 36.2, 0.15), "4TB power {}", c4t.total_mw());
        assert!(within(c4t.total_mm2(), 1.1, 0.25), "4TB area {}", c4t.total_mm2());
        // Monotonic in capacity.
        assert!(c4t.total_mw() > c384.total_mw());
        assert!(c4t.total_mm2() > c384.total_mm2());
    }

    #[test]
    fn sizes_scale_monotonically_with_capacity() {
        let a = StructureSizes::compute(&OverheadConfig::paper_384gb());
        let b = StructureSizes::compute(&OverheadConfig::paper_4tb());
        assert!(b.sram_total() > a.sram_total());
        assert!(b.dram_total() > a.dram_total());
        assert!(b.migration_table_bytes > a.migration_table_bytes);
    }
}
