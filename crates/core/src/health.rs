//! Per-rank error-health tracking: a leaky-bucket error counter per rank
//! feeding a `Healthy → Degraded → Draining → Retired` lifecycle.
//!
//! The DTL's indirection makes rank *retirement* as software-transparent as
//! rank power-down (the reliability extension the paper's conclusion points
//! to). This module supplies the trigger: ECC error reports accumulate in a
//! per-rank leaky bucket; a rank whose bucket crosses the degraded
//! threshold is flagged, and crossing the retirement threshold asks the
//! device to drain and retire the rank. The bucket leaks over time, so
//! sparse background errors (a few per hour) never trip a healthy rank,
//! while an error storm — many errors in seconds — does.
//!
//! The tracker records error arrivals and bucket levels; the *effective*
//! health of a rank is derived by combining the bucket state with the
//! rank's power-down lifecycle (owned by
//! [`PowerDownEngine`](crate::PowerDownEngine)), so the two state machines
//! cannot disagree.

use dtl_dram::Picos;
use dtl_telemetry::{EventKind, HealthStateId, Telemetry};
use serde::{Deserialize, Serialize};

use crate::addr::SegmentGeometry;
use crate::powerdown::RankPdState;

/// Error-health lifecycle of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankHealth {
    /// No concerning error history.
    Healthy,
    /// The error bucket crossed the degraded threshold (or retirement was
    /// requested but could not proceed): the rank is suspect but still
    /// serving data.
    Degraded,
    /// Retirement triggered and live segments are migrating out.
    Draining,
    /// Permanently retired: powered down, never allocated again.
    Retired,
}

impl RankHealth {
    /// The telemetry mirror of this health state.
    pub fn telemetry_id(self) -> HealthStateId {
        match self {
            RankHealth::Healthy => HealthStateId::Healthy,
            RankHealth::Degraded => HealthStateId::Degraded,
            RankHealth::Draining => HealthStateId::Draining,
            RankHealth::Retired => HealthStateId::Retired,
        }
    }
}

/// Leaky-bucket parameters of the health tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthParams {
    /// Bucket units drained per second of error-free operation.
    pub leak_per_sec: f64,
    /// Bucket level at which a rank becomes [`RankHealth::Degraded`].
    pub degraded_threshold: f64,
    /// Bucket level at which retirement is requested.
    pub retire_threshold: f64,
    /// Bucket units added per correctable error (uncorrectable errors add
    /// [`HealthParams::uncorrectable_weight`]).
    pub correctable_weight: f64,
    /// Bucket units added per uncorrectable error.
    pub uncorrectable_weight: f64,
}

impl Default for HealthParams {
    fn default() -> Self {
        // A rank survives indefinite background noise below ~1 error/s but
        // a storm of a dozen correctable (or two uncorrectable) errors in a
        // few seconds trips retirement.
        HealthParams {
            leak_per_sec: 1.0,
            degraded_threshold: 6.0,
            retire_threshold: 12.0,
            correctable_weight: 1.0,
            uncorrectable_weight: 8.0,
        }
    }
}

/// Serializable per-rank error counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankErrorRecord {
    /// Correctable errors recorded on the rank.
    pub correctable: u64,
    /// Uncorrectable errors recorded on the rank.
    pub uncorrectable: u64,
    /// Current leaky-bucket level (as of the last recorded error).
    pub bucket: f64,
}

/// Aggregate health statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthStats {
    /// Correctable errors recorded device-wide.
    pub correctable_errors: u64,
    /// Uncorrectable errors recorded device-wide.
    pub uncorrectable_errors: u64,
    /// Ranks whose bucket crossed the retirement threshold.
    pub retire_trips: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct RankCell {
    correctable: u64,
    uncorrectable: u64,
    bucket: f64,
    last_update: Picos,
    /// Latched once the bucket crosses the degraded threshold.
    degraded: bool,
    /// Latched once the bucket crosses the retirement threshold.
    tripped: bool,
}

/// Tracks error history per rank and decides when retirement is due.
#[derive(Debug)]
pub struct HealthTracker {
    geo: SegmentGeometry,
    params: HealthParams,
    cells: Vec<RankCell>,
    stats: HealthStats,
    telemetry: Telemetry,
}

impl HealthTracker {
    /// Builds a tracker with every rank healthy.
    pub fn new(geo: SegmentGeometry, params: HealthParams) -> Self {
        let n = (geo.channels * geo.ranks_per_channel) as usize;
        HealthTracker {
            geo,
            params,
            cells: vec![RankCell::default(); n],
            stats: HealthStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; the first degraded-latch flip of a rank
    /// emits a `HealthTransition` event (later lifecycle steps are emitted
    /// by the device, which owns the drain/retire machinery).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The parameters in effect.
    pub fn params(&self) -> HealthParams {
        self.params
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HealthStats {
        self.stats
    }

    fn idx(&self, channel: u32, rank: u32) -> usize {
        (channel * self.geo.ranks_per_channel + rank) as usize
    }

    /// Records a correctable error. Returns `true` when this error tripped
    /// the retirement threshold for the first time.
    pub fn record_correctable(&mut self, channel: u32, rank: u32, now: Picos) -> bool {
        self.stats.correctable_errors += 1;
        let w = self.params.correctable_weight;
        let i = self.idx(channel, rank);
        self.cells[i].correctable += 1;
        self.record(channel, rank, w, now)
    }

    /// Records an uncorrectable error. Returns `true` when this error
    /// tripped the retirement threshold for the first time.
    pub fn record_uncorrectable(&mut self, channel: u32, rank: u32, now: Picos) -> bool {
        self.stats.uncorrectable_errors += 1;
        let w = self.params.uncorrectable_weight;
        let i = self.idx(channel, rank);
        self.cells[i].uncorrectable += 1;
        self.record(channel, rank, w, now)
    }

    fn record(&mut self, channel: u32, rank: u32, weight: f64, now: Picos) -> bool {
        let i = self.idx(channel, rank);
        let cell = &mut self.cells[i];
        // Leak since the last error, then add this one.
        let dt = now.saturating_sub(cell.last_update).as_secs_f64();
        cell.bucket = (cell.bucket - dt * self.params.leak_per_sec).max(0.0) + weight;
        cell.last_update = now;
        if cell.bucket >= self.params.degraded_threshold && !cell.degraded {
            cell.degraded = true;
            self.telemetry.emit(
                now.as_ps(),
                EventKind::HealthTransition {
                    channel,
                    rank,
                    from: HealthStateId::Healthy,
                    to: HealthStateId::Degraded,
                },
            );
        }
        if cell.bucket >= self.params.retire_threshold && !cell.tripped {
            cell.tripped = true;
            self.stats.retire_trips += 1;
            return true;
        }
        false
    }

    /// The rank's error counters and bucket level.
    pub fn counters(&self, channel: u32, rank: u32) -> RankErrorRecord {
        let cell = self.cells[self.idx(channel, rank)];
        RankErrorRecord {
            correctable: cell.correctable,
            uncorrectable: cell.uncorrectable,
            bucket: cell.bucket,
        }
    }

    /// Whether the rank's retirement threshold has tripped.
    pub fn retire_tripped(&self, channel: u32, rank: u32) -> bool {
        self.cells[self.idx(channel, rank)].tripped
    }

    /// The rank's effective health, derived from its error history and its
    /// power-down lifecycle:
    ///
    /// * a retired rank is [`RankHealth::Retired`] no matter why;
    /// * a tripped rank whose drain is in progress is
    ///   [`RankHealth::Draining`];
    /// * a degraded-or-tripped rank that is still serving (e.g. retirement
    ///   was refused for capacity) is [`RankHealth::Degraded`];
    /// * everything else is [`RankHealth::Healthy`].
    pub fn health(&self, channel: u32, rank: u32, lifecycle: RankPdState) -> RankHealth {
        let cell = self.cells[self.idx(channel, rank)];
        match lifecycle {
            RankPdState::Retired => RankHealth::Retired,
            RankPdState::Draining if cell.tripped => RankHealth::Draining,
            _ if cell.degraded => RankHealth::Degraded,
            _ => RankHealth::Healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 };
        HealthTracker::new(geo, HealthParams::default())
    }

    #[test]
    fn sparse_errors_leak_away() {
        let mut t = tracker();
        // One error every 10 s for a minute: bucket never accumulates.
        for k in 0..6u64 {
            let tripped = t.record_correctable(0, 0, Picos::from_secs(k * 10));
            assert!(!tripped);
        }
        assert_eq!(t.health(0, 0, RankPdState::Active), RankHealth::Healthy);
        assert_eq!(t.counters(0, 0).correctable, 6);
        assert!(t.counters(0, 0).bucket <= 1.0 + 1e-9);
    }

    #[test]
    fn dense_correctable_storm_trips_retirement() {
        let mut t = tracker();
        let mut tripped = false;
        for k in 0..20u64 {
            tripped |= t.record_correctable(1, 2, Picos::from_ms(k * 10));
        }
        assert!(tripped);
        assert!(t.retire_tripped(1, 2));
        // Tripping latches: a later error does not re-trip.
        assert!(!t.record_correctable(1, 2, Picos::from_secs(1)));
        assert_eq!(t.stats().retire_trips, 1);
        // Other ranks are untouched.
        assert_eq!(t.health(1, 3, RankPdState::Active), RankHealth::Healthy);
    }

    #[test]
    fn uncorrectable_errors_weigh_heavier() {
        let mut t = tracker();
        assert!(!t.record_uncorrectable(0, 1, Picos::from_ms(1)));
        assert_eq!(t.health(0, 1, RankPdState::Active), RankHealth::Degraded);
        assert!(t.record_uncorrectable(0, 1, Picos::from_ms(2)), "second one trips");
    }

    #[test]
    fn health_follows_lifecycle() {
        let mut t = tracker();
        for k in 0..20u64 {
            t.record_correctable(0, 0, Picos::from_ms(k));
        }
        assert_eq!(t.health(0, 0, RankPdState::Active), RankHealth::Degraded);
        assert_eq!(t.health(0, 0, RankPdState::Draining), RankHealth::Draining);
        assert_eq!(t.health(0, 0, RankPdState::Retired), RankHealth::Retired);
        // A rank draining for power-down (no error history) stays healthy.
        assert_eq!(t.health(1, 1, RankPdState::Draining), RankHealth::Healthy);
        assert_eq!(t.health(1, 1, RankPdState::Retired), RankHealth::Retired);
    }

    #[test]
    fn stats_aggregate_across_ranks() {
        let mut t = tracker();
        t.record_correctable(0, 0, Picos::ZERO);
        t.record_uncorrectable(1, 0, Picos::ZERO);
        assert_eq!(t.stats().correctable_errors, 1);
        assert_eq!(t.stats().uncorrectable_errors, 1);
    }
}
