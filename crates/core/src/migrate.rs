//! Segment migration (paper §4.2): copy jobs for rank-level power-down,
//! swap jobs for hotness-aware self-refresh, and the atomic-migration
//! protocol that keeps foreground writes correct.
//!
//! One migration is in flight per channel (migration traffic only uses the
//! bandwidth the foreground queue leaves idle — the backend enforces the
//! scheduling; this engine enforces the bookkeeping):
//!
//! * a foreground **write** to a line the in-flight job has already copied
//!   aborts the job, which retries; after `retry_limit` aborts the job goes
//!   to the back of the queue;
//! * a write after the job's data movement completed but before the mapping
//!   update (the *completion bit* window) is routed to the new location;
//! * reads always proceed against the still-valid old location.

use std::collections::VecDeque;

use dtl_dram::Picos;
use dtl_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use crate::addr::{Dsn, SegmentGeometry, SegmentLocation};
use crate::backend::MemoryBackend;
use crate::error::DtlError;

/// What a migration job does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationKind {
    /// Copy a live segment to a free slot (power-down drain).
    Copy {
        /// Source (live) segment.
        src: Dsn,
        /// Destination (free) segment.
        dst: Dsn,
    },
    /// Swap two segments' contents (hotness consolidation).
    Swap {
        /// First segment.
        a: Dsn,
        /// Second segment.
        b: Dsn,
    },
}

impl MigrationKind {
    fn endpoints(&self) -> (Dsn, Dsn) {
        match *self {
            MigrationKind::Copy { src, dst } => (src, dst),
            MigrationKind::Swap { a, b } => (a, b),
        }
    }
}

/// A queued or in-flight migration job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationJob {
    /// Engine-assigned id.
    pub id: u64,
    /// What to move.
    pub kind: MigrationKind,
    /// Aborts suffered so far.
    pub retries: u32,
    /// When the job entered the queue (its earliest possible start).
    pub enqueued_at: Picos,
}

/// A finished job, ready for mapping/allocator updates by the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedMigration {
    /// The finished job.
    pub job: MigrationJob,
    /// When its data movement finished.
    pub finished: Picos,
}

/// How the device must handle a foreground write hitting a segment with
/// migration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRouting {
    /// No migration state involved: write normally.
    Proceed,
    /// Data already moved, mapping not yet updated: write the new location.
    RouteTo(Dsn),
    /// The write invalidated already-copied data; the job was aborted and
    /// will retry. The write itself proceeds against the old location.
    AbortedJob,
}

/// Outcome of interrupting a channel's in-flight migration
/// ([`MigrationEngine::interrupt_channel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationInterrupt {
    /// No migration was in flight on the channel.
    Idle,
    /// The job's partial progress was discarded and it was requeued to
    /// replay after a backoff.
    Replayed {
        /// The replaying job's id.
        id: u64,
        /// Aborts the job has now suffered.
        retries: u32,
    },
    /// The job exhausted its retry budget and was removed from the engine;
    /// the caller must roll back its bookkeeping (release reservations,
    /// restart or abandon the move).
    RolledBack {
        /// The removed job, as it was when interrupted.
        job: MigrationJob,
    },
}

#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    job: MigrationJob,
    start: Picos,
    complete_at: Picos,
    bytes: u64,
}

impl ActiveJob {
    /// Fraction of lines copied by `now`, by linear interpolation.
    fn lines_done(&self, now: Picos) -> u64 {
        let total_lines = self.bytes / 64;
        if now >= self.complete_at {
            return total_lines;
        }
        if now <= self.start {
            return 0;
        }
        let num = (now - self.start).as_ps() as u128;
        let den = (self.complete_at - self.start).as_ps().max(1) as u128;
        (u128::from(total_lines) * num / den) as u64
    }
}

/// Cumulative migration statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Jobs completed.
    pub completed: u64,
    /// Bytes of segment data moved (swaps count both directions).
    pub bytes_moved: u64,
    /// Job aborts due to conflicting foreground writes.
    pub aborts: u64,
    /// Jobs demoted to the queue tail after exceeding the retry limit.
    pub requeues: u64,
    /// In-flight jobs cut off by injected interruptions.
    pub interrupts: u64,
    /// Interrupted jobs handed back for rollback (retry budget exhausted).
    pub rollbacks: u64,
}

/// The migration engine: one in-flight job per channel, FIFO queue behind.
///
/// # Examples
///
/// ```
/// use dtl_core::{AnalyticBackend, Dsn, MigrationEngine, SegmentGeometry};
/// use dtl_dram::{Picos, PowerParams};
///
/// let geo = SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 };
/// let mut backend = AnalyticBackend::new(geo, 256 << 10, PowerParams::ddr4_128gb_dimm());
/// let mut eng = MigrationEngine::new(geo, 256 << 10, 3);
/// eng.enqueue_copy(Dsn(0), Dsn(10), Picos::ZERO)?;   // same channel (even DSNs)
/// let done = eng.pump(Picos::from_ms(10), &mut backend);
/// assert_eq!(done.len(), 1);
/// # Ok::<(), dtl_core::DtlError>(())
/// ```
#[derive(Debug)]
pub struct MigrationEngine {
    geo: SegmentGeometry,
    segment_bytes: u64,
    retry_limit: u32,
    queue: VecDeque<MigrationJob>,
    in_flight: Vec<Option<ActiveJob>>,
    /// When each channel's migration slot last freed (successor jobs chain
    /// back-to-back from here, not from the next pump call).
    channel_free_at: Vec<Picos>,
    /// Energy of aborted partial copies, charged at the next pump.
    pending_charges: Vec<(SegmentLocation, SegmentLocation, u64)>,
    next_id: u64,
    stats: MigrationStats,
    /// Deepest the backlog (queued + in flight) ever got. Kept outside
    /// [`MigrationStats`] so serialized results are unaffected.
    backlog_high_water: u64,
    telemetry: Telemetry,
}

impl MigrationEngine {
    /// Builds an idle engine.
    pub fn new(geo: SegmentGeometry, segment_bytes: u64, retry_limit: u32) -> Self {
        MigrationEngine {
            geo,
            segment_bytes,
            retry_limit,
            queue: VecDeque::new(),
            in_flight: vec![None; geo.channels as usize],
            channel_free_at: vec![Picos::ZERO; geo.channels as usize],
            pending_charges: Vec::new(),
            next_id: 0,
            stats: MigrationStats::default(),
            backlog_high_water: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; every completed job emits a
    /// `SegmentMigrated` event stamped with its data-movement finish time.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Queued jobs (not yet started).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently moving data.
    pub fn in_flight(&self) -> usize {
        self.in_flight.iter().filter(|j| j.is_some()).count()
    }

    /// True when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight() == 0
    }

    /// Copy jobs queued or in flight — each holds one allocated but
    /// still-unmapped destination reservation in the segment allocator.
    pub fn pending_copies(&self) -> u64 {
        let is_copy = |j: &MigrationJob| matches!(j.kind, MigrationKind::Copy { .. });
        (self.queue.iter().filter(|j| is_copy(j)).count()
            + self.in_flight.iter().flatten().filter(|a| is_copy(&a.job)).count()) as u64
    }

    /// Queues a copy job at time `now`.
    ///
    /// # Errors
    ///
    /// [`DtlError::Internal`] if source and destination are on different
    /// channels (DTL migrations are always intra-channel so per-VM channel
    /// balance is preserved).
    pub fn enqueue_copy(&mut self, src: Dsn, dst: Dsn, now: Picos) -> Result<u64, DtlError> {
        self.enqueue(MigrationKind::Copy { src, dst }, now)
    }

    /// Queues a swap job at time `now`.
    ///
    /// # Errors
    ///
    /// Same channel restriction as [`MigrationEngine::enqueue_copy`].
    pub fn enqueue_swap(&mut self, a: Dsn, b: Dsn, now: Picos) -> Result<u64, DtlError> {
        self.enqueue(MigrationKind::Swap { a, b }, now)
    }

    fn enqueue(&mut self, kind: MigrationKind, now: Picos) -> Result<u64, DtlError> {
        let (x, y) = kind.endpoints();
        let (cx, cy) = (self.geo.location(x).channel, self.geo.location(y).channel);
        if cx != cy {
            return Err(DtlError::Internal {
                reason: format!("cross-channel migration {x} -> {y} (ch{cx} vs ch{cy})"),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(MigrationJob { id, kind, retries: 0, enqueued_at: now });
        let depth = (self.queue.len() + self.in_flight()) as u64;
        self.backlog_high_water = self.backlog_high_water.max(depth);
        Ok(id)
    }

    /// Deepest the backlog (queued + in flight) ever got, sampled at every
    /// enqueue.
    pub fn backlog_high_water(&self) -> u64 {
        self.backlog_high_water
    }

    /// Starts queued jobs and collects completions, chaining successor jobs
    /// back-to-back from each channel-slot release (so an entire rank drain
    /// progresses within one pump, at the modeled migration bandwidth).
    /// Call regularly; `now` must be monotonic.
    pub fn pump<B: MemoryBackend>(
        &mut self,
        now: Picos,
        backend: &mut B,
    ) -> Vec<CompletedMigration> {
        let mut done = Vec::new();
        for (src, dst, lines) in self.pending_charges.drain(..) {
            backend.charge_migration(src, dst, lines);
        }
        loop {
            let mut progressed = false;
            // Collect completions (charging the moved lines).
            for (ch, slot) in self.in_flight.iter_mut().enumerate() {
                if let Some(active) = slot {
                    if now >= active.complete_at {
                        self.stats.completed += 1;
                        self.stats.bytes_moved += active.bytes;
                        self.channel_free_at[ch] = active.complete_at;
                        let (x, y) = active.job.kind.endpoints();
                        let (sl, dl) = (self.geo.location(x), self.geo.location(y));
                        match active.job.kind {
                            MigrationKind::Copy { .. } => {
                                backend.charge_migration(sl, dl, active.bytes / 64);
                            }
                            MigrationKind::Swap { .. } => {
                                let half = active.bytes / 2 / 64;
                                backend.charge_migration(sl, dl, half);
                                backend.charge_migration(dl, sl, half);
                            }
                        }
                        self.telemetry.emit(
                            active.complete_at.as_ps(),
                            EventKind::SegmentMigrated {
                                channel: ch as u32,
                                src: x.0,
                                dst: y.0,
                                swap: matches!(active.job.kind, MigrationKind::Swap { .. }),
                                bytes: active.bytes,
                            },
                        );
                        done.push(CompletedMigration {
                            job: active.job,
                            finished: active.complete_at,
                        });
                        *slot = None;
                        progressed = true;
                    }
                }
            }
            // Start queued jobs on idle channels, in queue order.
            let mut remaining = VecDeque::with_capacity(self.queue.len());
            while let Some(job) = self.queue.pop_front() {
                let (x, y) = job.kind.endpoints();
                let ch = self.geo.location(x).channel as usize;
                if self.in_flight[ch].is_some() {
                    remaining.push_back(job);
                    continue;
                }
                let start = job.enqueued_at.max(self.channel_free_at[ch]);
                let (src_loc, dst_loc) = (self.geo.location(x), self.geo.location(y));
                let bytes = match job.kind {
                    MigrationKind::Copy { .. } => self.segment_bytes,
                    MigrationKind::Swap { .. } => self.segment_bytes * 2,
                };
                let complete_at = match job.kind {
                    MigrationKind::Copy { .. } => {
                        backend.bulk_copy(src_loc, dst_loc, self.segment_bytes, start)
                    }
                    MigrationKind::Swap { .. } => {
                        let t1 = backend.bulk_copy(src_loc, dst_loc, self.segment_bytes, start);
                        backend.bulk_copy(dst_loc, src_loc, self.segment_bytes, t1)
                    }
                };
                self.in_flight[ch] = Some(ActiveJob { job, start, complete_at, bytes });
                progressed = true;
            }
            self.queue = remaining;
            if !progressed {
                break;
            }
            // Loop again: a job that started and completes before `now`
            // frees its slot for the next queued job on that channel.
            let any_completable = self.in_flight.iter().flatten().any(|a| a.complete_at <= now);
            if !any_completable {
                break;
            }
        }
        done
    }

    /// The next time at which [`MigrationEngine::pump`] would make
    /// progress, for event-driven callers: the earliest in-flight
    /// completion, or the earliest start time of a queued job whose channel
    /// is idle (pumping then starts it and yields a real completion time).
    /// Queued jobs behind an in-flight one are covered by that channel's
    /// completion event. `None` means the engine is quiescent — no pump is
    /// needed until new work is enqueued.
    pub fn next_event_at(&self) -> Option<Picos> {
        let in_flight = self.in_flight.iter().flatten().map(|a| a.complete_at).min();
        let queued = self
            .queue
            .iter()
            .filter_map(|job| {
                let ch = self.geo.location(job.kind.endpoints().0).channel as usize;
                if self.in_flight[ch].is_some() {
                    None
                } else {
                    Some(job.enqueued_at.max(self.channel_free_at[ch]))
                }
            })
            .min();
        match (in_flight, queued) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Classifies a foreground **write** to segment `dsn` at line `offset`
    /// (bytes within the segment). Implements the §4.2 conflict protocol.
    /// The energy of partially-copied-then-aborted lines is charged at the
    /// next [`MigrationEngine::pump`].
    pub fn on_foreground_write(&mut self, dsn: Dsn, offset: u64, now: Picos) -> WriteRouting {
        let ch = self.geo.location(dsn).channel as usize;
        let Some(active) = self.in_flight[ch] else {
            return WriteRouting::Proceed;
        };
        let (src, dst) = active.job.kind.endpoints();
        // Swaps touch both segments; copies only conflict on the source.
        let involved = match active.job.kind {
            MigrationKind::Copy { .. } => dsn == src,
            MigrationKind::Swap { .. } => dsn == src || dsn == dst,
        };
        if !involved {
            return WriteRouting::Proceed;
        }
        if now >= active.complete_at {
            // Completion bit set; mapping not updated yet: route to the new
            // physical location.
            let new = match active.job.kind {
                MigrationKind::Copy { .. } => dst,
                MigrationKind::Swap { a, b } => {
                    if dsn == a {
                        b
                    } else {
                        a
                    }
                }
            };
            return WriteRouting::RouteTo(new);
        }
        let line = offset / 64;
        if line < active.lines_done(now) {
            // The line was already copied: the copy is stale. Abort and
            // retry the whole request (§4.2). A retry backs off
            // exponentially in the job's own duration — without backoff a
            // write-hot segment would re-copy (and re-pay) continuously.
            self.stats.aborts += 1;
            let mut job = active.job;
            job.retries += 1;
            let duration = active.complete_at.saturating_sub(active.start);
            let backoff = duration * (1u64 << job.retries.min(8));
            job.enqueued_at = now + backoff;
            // Pay for the lines that were copied before the abort.
            let wasted = active.lines_done(now);
            if wasted > 0 {
                let (x, y) = job.kind.endpoints();
                self.pending_charges.push((self.geo.location(x), self.geo.location(y), wasted));
            }
            self.in_flight[ch] = None;
            if job.retries > self.retry_limit {
                self.stats.requeues += 1;
                job.retries = 0;
                self.queue.push_back(job);
            } else {
                self.queue.push_front(job);
            }
            WriteRouting::AbortedJob
        } else {
            WriteRouting::Proceed
        }
    }

    /// Cuts off the channel's in-flight migration mid-transfer (a fault
    /// injector's controller reset / queue flush). The crash-consistency
    /// contract of §4.2 applies: mapping updates only ever happen on
    /// completion, so the partially-written destination is simply
    /// discarded — its already-copied lines are charged as wasted energy —
    /// and the job either *replays* (requeued at the front, with the same
    /// exponential backoff as a write-conflict abort) or, once its retry
    /// budget is exhausted, is *rolled back*: removed from the engine and
    /// returned so the device can release reservations and restart or
    /// abandon the move.
    pub fn interrupt_channel(&mut self, channel: u32, now: Picos) -> MigrationInterrupt {
        let Some(slot) = self.in_flight.get_mut(channel as usize) else {
            return MigrationInterrupt::Idle;
        };
        let Some(active) = slot.take() else {
            return MigrationInterrupt::Idle;
        };
        self.stats.interrupts += 1;
        // Energy of the lines copied before the cut-off is still spent.
        let wasted = active.lines_done(now);
        if wasted > 0 {
            let (x, y) = active.job.kind.endpoints();
            self.pending_charges.push((self.geo.location(x), self.geo.location(y), wasted));
        }
        let mut job = active.job;
        job.retries += 1;
        if job.retries > self.retry_limit {
            self.stats.rollbacks += 1;
            return MigrationInterrupt::RolledBack { job };
        }
        let duration = active.complete_at.saturating_sub(active.start);
        let backoff = duration * (1u64 << job.retries.min(8));
        job.enqueued_at = now + backoff;
        self.queue.push_front(job);
        MigrationInterrupt::Replayed { id: job.id, retries: job.retries }
    }

    /// Cancels every queued or in-flight job touching `dsn` (used when the
    /// owning VM deallocates mid-migration). Returns the cancelled jobs so
    /// the caller can release reservations and fix bookkeeping.
    pub fn cancel_involving(&mut self, dsn: Dsn) -> Vec<MigrationJob> {
        let hits = |j: &MigrationJob| {
            let (x, y) = j.kind.endpoints();
            x == dsn || y == dsn
        };
        let mut out = Vec::new();
        self.queue.retain(|j| {
            if hits(j) {
                out.push(*j);
                false
            } else {
                true
            }
        });
        for slot in &mut self.in_flight {
            if let Some(active) = slot {
                if hits(&active.job) {
                    out.push(active.job);
                    *slot = None;
                }
            }
        }
        out
    }

    /// Lists (without cancelling) every queued or in-flight job with an
    /// endpoint in the given rank.
    pub fn jobs_involving_rank(&self, channel: u32, rank: u32) -> Vec<MigrationJob> {
        let hits = |j: &MigrationJob| {
            let (x, y) = j.kind.endpoints();
            [x, y].into_iter().any(|d| {
                let loc = self.geo.location(d);
                loc.channel == channel && loc.rank == rank
            })
        };
        self.queue
            .iter()
            .copied()
            .filter(&hits)
            .chain(self.in_flight.iter().flatten().map(|a| a.job).filter(&hits))
            .collect()
    }

    /// Cancels the jobs with the given ids (queued or in flight); returns
    /// the ones actually found.
    pub fn cancel_ids(&mut self, ids: &[u64]) -> Vec<MigrationJob> {
        let mut out = Vec::new();
        self.queue.retain(|j| {
            if ids.contains(&j.id) {
                out.push(*j);
                false
            } else {
                true
            }
        });
        for slot in &mut self.in_flight {
            if let Some(active) = slot {
                if ids.contains(&active.job.id) {
                    out.push(active.job);
                    *slot = None;
                }
            }
        }
        out
    }

    /// Whether any queued or in-flight job has an endpoint in the given
    /// rank (used by rank-level power-down to avoid draining a rank that
    /// migrations are concurrently writing into).
    pub fn involves_rank(&self, channel: u32, rank: u32) -> bool {
        let hits = |j: &MigrationJob| {
            let (x, y) = j.kind.endpoints();
            [x, y].into_iter().any(|d| {
                let loc = self.geo.location(d);
                loc.channel == channel && loc.rank == rank
            })
        };
        self.queue.iter().any(hits) || self.in_flight.iter().flatten().any(|a| hits(&a.job))
    }

    /// Whether `dsn` is an endpoint of any queued or in-flight job (used to
    /// avoid planning conflicting migrations).
    pub fn involves(&self, dsn: Dsn) -> bool {
        let check = |j: &MigrationJob| {
            let (x, y) = j.kind.endpoints();
            x == dsn || y == dsn
        };
        self.queue.iter().any(check) || self.in_flight.iter().flatten().any(|a| check(&a.job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use dtl_dram::PowerParams;

    fn geo() -> SegmentGeometry {
        SegmentGeometry { channels: 2, ranks_per_channel: 4, segs_per_rank: 16 }
    }

    const SEG: u64 = 256 << 10;

    fn setup() -> (MigrationEngine, AnalyticBackend) {
        (
            MigrationEngine::new(geo(), SEG, 3),
            AnalyticBackend::new(geo(), SEG, PowerParams::ddr4_128gb_dimm()),
        )
    }

    /// DSNs on channel 0: even numbers (2 channels).
    fn dsn_ch0(n: u64) -> Dsn {
        Dsn(n * 2)
    }

    #[test]
    fn copy_job_completes_after_bandwidth_time() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        assert!(eng.pump(Picos::ZERO, &mut be).is_empty(), "just started");
        assert_eq!(eng.in_flight(), 1);
        let done = eng.pump(Picos::from_ms(10), &mut be);
        assert_eq!(done.len(), 1);
        assert!(eng.is_idle());
        assert_eq!(eng.stats().completed, 1);
        assert_eq!(eng.stats().bytes_moved, SEG);
    }

    #[test]
    fn swap_moves_double_the_bytes() {
        let (mut eng, mut be) = setup();
        eng.enqueue_swap(dsn_ch0(1), dsn_ch0(7), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        eng.pump(Picos::from_ms(50), &mut be);
        assert_eq!(eng.stats().bytes_moved, SEG * 2);
    }

    #[test]
    fn cross_channel_migration_rejected() {
        let (mut eng, _) = setup();
        // Dsn(0) is channel 0; Dsn(1) is channel 1.
        assert!(eng.enqueue_copy(Dsn(0), Dsn(1), Picos::ZERO).is_err());
    }

    #[test]
    fn next_event_at_tracks_in_flight_and_queued() {
        let (mut eng, mut be) = setup();
        assert_eq!(eng.next_event_at(), None, "idle engine has no deadline");
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::from_us(3)).unwrap();
        // Not pumped yet: the queued job can start on its idle channel at
        // its enqueue time.
        assert_eq!(eng.next_event_at(), Some(Picos::from_us(3)));
        eng.pump(Picos::from_us(3), &mut be);
        let at = eng.next_event_at().expect("in-flight completion");
        assert!(at > Picos::from_us(3), "completion is in the future");
        // A second job on the same channel is covered by the first's
        // completion event, not a deadline of its own.
        eng.enqueue_copy(dsn_ch0(1), dsn_ch0(6), Picos::from_us(4)).unwrap();
        assert_eq!(eng.next_event_at(), Some(at));
        // Pump exactly at the reported time: the first job completes and
        // the second starts.
        let done = eng.pump(at, &mut be);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, at);
        assert!(eng.next_event_at().expect("second job in flight") > at);
        eng.pump(Picos::from_ms(50), &mut be);
        assert_eq!(eng.next_event_at(), None, "drained engine is quiescent");
    }

    #[test]
    fn one_job_per_channel_at_a_time() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.enqueue_copy(dsn_ch0(1), dsn_ch0(6), Picos::ZERO).unwrap();
        // A channel-1 job can start concurrently.
        eng.enqueue_copy(Dsn(3), Dsn(9), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        assert_eq!(eng.in_flight(), 2, "one per channel");
        assert_eq!(eng.queued(), 1);
    }

    #[test]
    fn write_to_uncopied_line_proceeds() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        // At t=0+epsilon almost nothing is copied; the last line proceeds.
        let r = eng.on_foreground_write(dsn_ch0(0), SEG - 64, Picos::from_ns(10));
        assert_eq!(r, WriteRouting::Proceed);
    }

    #[test]
    fn write_to_copied_line_aborts_job() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        // Halfway through, line 0 is long copied.
        let halfway = Picos::from_us(60);
        let r = eng.on_foreground_write(dsn_ch0(0), 0, halfway);
        assert_eq!(r, WriteRouting::AbortedJob);
        assert_eq!(eng.stats().aborts, 1);
        assert_eq!(eng.in_flight(), 0);
        assert_eq!(eng.queued(), 1, "job requeued for retry");
        // It restarts on the next pump.
        eng.pump(halfway, &mut be);
        assert_eq!(eng.in_flight(), 1);
    }

    #[test]
    fn repeated_aborts_demote_to_tail() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.enqueue_copy(dsn_ch0(1), dsn_ch0(6), Picos::ZERO).unwrap();
        // One same-channel copy takes SEG / (4.6 GB/s / 2).
        let dur = Picos::from_ps((SEG as f64 / (4.6e9 / 2.0) * 1e12) as u64);
        let mut restart = Picos::ZERO;
        for k in 1..=4u32 {
            // Probe shortly after the retry's backoff expires: the job is
            // mid-copy, and a write to its first (already copied) line
            // aborts it again.
            let probe = restart + Picos::from_us(20);
            eng.pump(probe, &mut be);
            let at = probe + Picos::from_us(1);
            let r = eng.on_foreground_write(dsn_ch0(0), 0, at);
            assert_eq!(r, WriteRouting::AbortedJob, "abort {k}");
            restart = at + dur * (1u64 << k);
        }
        assert_eq!(eng.stats().requeues, 1);
        // Job 1 completes first (it was never aborted); job 0 finally
        // completes once its post-demotion backoff expires.
        let done = eng.pump(restart + Picos::from_ms(200), &mut be);
        assert_eq!(
            done.last().unwrap().job.kind,
            MigrationKind::Copy { src: dsn_ch0(0), dst: dsn_ch0(5) }
        );
        assert_eq!(eng.stats().completed, 2);
        assert!(eng.is_idle());
    }

    #[test]
    fn write_after_completion_bit_routes_to_new_location() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        // Data movement done but pump (mapping update) not run yet.
        let r = eng.on_foreground_write(dsn_ch0(0), 0, Picos::from_ms(10));
        assert_eq!(r, WriteRouting::RouteTo(dsn_ch0(5)));
    }

    #[test]
    fn swap_routes_writes_to_counterpart() {
        let (mut eng, mut be) = setup();
        eng.enqueue_swap(dsn_ch0(2), dsn_ch0(9), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        let r = eng.on_foreground_write(dsn_ch0(9), 0, Picos::from_ms(50));
        assert_eq!(r, WriteRouting::RouteTo(dsn_ch0(2)));
    }

    #[test]
    fn unrelated_write_proceeds() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        let r = eng.on_foreground_write(dsn_ch0(3), 0, Picos::from_us(60));
        assert_eq!(r, WriteRouting::Proceed);
    }

    #[test]
    fn interrupt_idle_channel_is_a_no_op() {
        let (mut eng, _) = setup();
        assert_eq!(eng.interrupt_channel(0, Picos::ZERO), MigrationInterrupt::Idle);
        assert_eq!(eng.interrupt_channel(99, Picos::ZERO), MigrationInterrupt::Idle);
        assert_eq!(eng.stats().interrupts, 0);
    }

    #[test]
    fn interrupted_job_replays_and_completes() {
        let (mut eng, mut be) = setup();
        let id = eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        let r = eng.interrupt_channel(0, Picos::from_us(60));
        assert_eq!(r, MigrationInterrupt::Replayed { id, retries: 1 });
        assert_eq!(eng.stats().interrupts, 1);
        assert_eq!(eng.in_flight(), 0);
        assert_eq!(eng.queued(), 1);
        let done = eng.pump(Picos::from_ms(50), &mut be);
        assert_eq!(done.len(), 1, "replay finishes the copy");
        assert_eq!(eng.stats().completed, 1);
    }

    #[test]
    fn interrupts_past_retry_limit_roll_back() {
        let (mut eng, mut be) = setup();
        let id = eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        // One same-channel copy takes SEG / (4.6 GB/s / 2); interrupt each
        // attempt mid-copy, just after its backoff expires. retry_limit = 3:
        // the 4th interruption rolls the job back.
        let dur = Picos::from_ps((SEG as f64 / (4.6e9 / 2.0) * 1e12) as u64);
        let mut restart = Picos::ZERO;
        let mut outcome = MigrationInterrupt::Idle;
        for k in 1..=4u32 {
            eng.pump(restart, &mut be);
            let at = restart + Picos::from_us(1);
            outcome = eng.interrupt_channel(0, at);
            if matches!(outcome, MigrationInterrupt::RolledBack { .. }) {
                break;
            }
            assert_eq!(outcome, MigrationInterrupt::Replayed { id, retries: k });
            restart = at + dur * (1u64 << k);
        }
        let MigrationInterrupt::RolledBack { job } = outcome else {
            panic!("expected rollback, got {outcome:?}");
        };
        assert_eq!(job.id, id);
        assert_eq!(job.retries, 4);
        assert_eq!(eng.stats().rollbacks, 1);
        assert!(eng.is_idle(), "rolled-back job left the engine");
        assert_eq!(eng.stats().completed, 0);
    }

    #[test]
    fn involves_checks_queue_and_flight() {
        let (mut eng, mut be) = setup();
        eng.enqueue_copy(dsn_ch0(0), dsn_ch0(5), Picos::ZERO).unwrap();
        eng.enqueue_copy(dsn_ch0(1), dsn_ch0(6), Picos::ZERO).unwrap();
        eng.pump(Picos::ZERO, &mut be);
        assert!(eng.involves(dsn_ch0(0)), "in flight");
        assert!(eng.involves(dsn_ch0(6)), "queued");
        assert!(!eng.involves(dsn_ch0(12)));
    }
}
