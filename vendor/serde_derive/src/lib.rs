//! Minimal offline stand-in for `serde_derive`.
//!
//! Generates impls of the *vendored* `serde` crate's `Serialize` /
//! `Deserialize` traits (which use an owned `serde::Value` tree rather than
//! the upstream visitor model). The parser walks the raw
//! `proc_macro::TokenTree` stream directly — no `syn`/`quote` — and supports
//! exactly the shapes this workspace uses: non-generic named structs, tuple
//! structs, unit structs, and enums with unit / tuple / struct variants.
//! `#[serde(...)]` field attributes are not supported and the workspace does
//! not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the vendored `serde::Serialize` for a non-generic type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` for a non-generic type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            _ => ItemKind::Struct(Shape::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde_derive stub: expected `:` after field name"
        );
        i += 1;
        skip_type(&toks, &mut i);
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past a type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        skip_type(&toks, &mut i);
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next top-level comma.
        if is_punct(toks.get(i), '=') {
            while i < toks.len() && !is_punct(toks.get(i), ',') {
                i += 1;
            }
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Shape::Tuple(1)) => format!("{S}(&self.0)"),
        ItemKind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n).map(|k| format!("{S}(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, {S}(&self.{f}))", string_lit(f)))
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({}),",
                            string_lit(vn)
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![({}, {S}(__f0))]),",
                            string_lit(vn)
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> =
                                (0..*n).map(|k| format!("{S}(__f{k})")).collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![({}, ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                string_lit(vn),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| format!("({}, {S}({f}))", string_lit(f)))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![({}, ::serde::Value::Map(::std::vec![{}]))]),",
                                string_lit(vn),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        ItemKind::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}({D}(__v)?))")
        }
        ItemKind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n).map(|k| format!("{D}(&__s[{k}])?")).collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", \"{name}\"))?; \
                 if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"seq of {n}\", \"{name}\")); }} \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {D}(::serde::field(__m, \"{f}\")?)?"))
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({D}(__payload)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> =
                                (0..*n).map(|k| format!("{D}(&__s[{k}])?")).collect();
                            format!(
                                "\"{vn}\" => {{ \
                                   let __s = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", \"{name}::{vn}\"))?; \
                                   if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"seq of {n}\", \"{name}::{vn}\")); }} \
                                   ::std::result::Result::Ok({name}::{vn}({})) \
                                 }}",
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: {D}(::serde::field(__fm, \"{f}\")?)?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                   let __fm = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vn}\"))?; \
                                   ::std::result::Result::Ok({name}::{vn} {{ {} }}) \
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")), \
                   }}, \
                   ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                     let (__k, __payload) = &__m[0]; \
                     match __k.as_str() {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")), \
                     }} \
                   }} \
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum\", \"{name}\")), \
                 }}",
                unit_arms.join(" "),
                payload_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables)] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
