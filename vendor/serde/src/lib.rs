//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny serialization framework exposing the same *surface* the code uses
//! (`Serialize`, `Deserialize`, `#[derive(Serialize, Deserialize)]`) over a
//! much simpler data model: every value serializes into an owned [`Value`]
//! tree that `serde_json` (also vendored) renders to JSON text. Differences
//! from upstream serde worth knowing:
//!
//! - `Deserialize` has no lifetime parameter; everything deserializes from a
//!   borrowed [`Value`] into owned data.
//! - Keyed collections (`HashMap`, `BTreeMap`) serialize as sequences of
//!   `[key, value]` pairs so non-string keys survive the JSON round trip.
//! - Non-finite floats serialize as `null` (matching `serde_json`).
//! - `#[serde(...)]` attributes are not supported (and not used here).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats and `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    Uint(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A string-keyed map with preserved insertion order (struct fields,
    /// enum variant wrappers).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the sequence elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// A custom error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// An unrecognized enum variant name.
    pub fn unknown_variant(got: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{got}` for enum {ty}"))
    }

    /// A struct field missing from the input map.
    pub fn missing_field(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field in a [`Value::Map`] body (used by derived code).
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(name))
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can deserialize themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitives -----------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Uint(*self as u128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Uint(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    _ => Err(DeError::expected(stringify!($t), "integer")),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i128;
                if x >= 0 { Value::Uint(x as u128) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Uint(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    _ => Err(DeError::expected(stringify!($t), "integer")),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Uint(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("f64", "number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("single-char string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

// --- references and wrappers ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// --- sequences ------------------------------------------------------------

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Seq(items.map(Serialize::to_value).collect())
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("seq", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::expected("seq of fixed length", "array"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(Vec::into_iter).map(|it| it.collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(|v: Vec<T>| v.into_iter().collect())
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(|v: Vec<T>| v.into_iter().collect())
    }
}

// --- keyed maps (serialized as seqs of [k, v] pairs) ----------------------

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    v.as_seq()
        .ok_or_else(|| DeError::expected("seq of pairs", "map"))?
        .iter()
        .map(|pair| {
            let s = pair
                .as_seq()
                .ok_or_else(|| DeError::expected("[key, value] pair", "map entry"))?;
            if s.len() != 2 {
                return Err(DeError::expected("[key, value] pair", "map entry"));
            }
            Ok((K::from_value(&s[0])?, V::from_value(&s[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v).map(|e| e.into_iter().collect())
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("seq", "tuple"))?;
                if s.len() != $len {
                    return Err(DeError::expected("tuple-length seq", "tuple"));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5; 6),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_round_trip() {
        let mut m: HashMap<u32, Vec<u64>> = HashMap::new();
        m.insert(3, vec![1, 2]);
        m.insert(9, vec![]);
        let back: HashMap<u32, Vec<u64>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);

        let t = (1u8, -5i64, "hi".to_string());
        let back: (u8, i64, String) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);

        let arr = [1u64, 2, 3];
        let back: [u64; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(arr, back);
    }

    #[test]
    fn option_and_floats() {
        let x: Option<u32> = None;
        assert_eq!(x.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::from_value(&Value::Uint(4)).unwrap(), 4.0);
    }
}
