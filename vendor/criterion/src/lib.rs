//! Minimal offline stand-in for `criterion`.
//!
//! Provides just enough API for the workspace's `harness = false` bench
//! targets to compile and run: `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of statistical sampling it times a small fixed number of
//! iterations and prints one `ns/iter` line per benchmark, so `cargo test`
//! (which runs bench targets in test mode) completes quickly.

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations timed per benchmark (after one warm-up call).
const MEASURE_ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// Declared per-iteration workload (accepted, not used for reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (accepted for compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the declared throughput (no-op in this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.total_ns / b.iters } else { 0 };
        println!("bench {}/{name}: ~{per_iter} ns/iter", self.name);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the measured routine.
pub struct Bencher {
    total_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Times `routine` over a fixed small number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += u128::from(MEASURE_ITERS);
    }

    /// Times `routine` over freshly set-up inputs.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Bundles benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
