//! Value-generation strategies (deterministic, non-shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies.
pub struct OneOf<T> {
    total: u32,
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs (weights must not all be zero).
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        OneOf { total, options }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
        for (w, strat) in &self.options {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof! weight bookkeeping")
    }
}

// --- `any::<T>()` ---------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64() as f32
    }
}

// --- range strategies -----------------------------------------------------

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u128() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u128() % span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u128() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                ((lo as i128) + (rng.next_u128() % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

// --- tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
