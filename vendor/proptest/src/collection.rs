//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`].
pub trait IntoSizeRange {
    /// Returns the `(min, max)` length bounds, both inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy generating `Vec`s of `elem`-generated values.
pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { elem, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.max - self.min) as u64 + 1;
        let len = self.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
