//! Minimal offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] macro (including the `#![proptest_config(...)]` header),
//! range and `any::<T>()` strategies, tuple strategies, `.prop_map`,
//! `prop_oneof!`, `prop::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros. Each test runs a configurable number of cases from
//! a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly. There is **no shrinking**: a failing case reports the
//! generated inputs via the panic message instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// Alias so `prop::collection::vec(...)` resolves (mirrors upstream).
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header followed by one or more `fn name(pat in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic_for(concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let __vals = ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                let __dbg = ::std::format!("{:?}", __vals);
                let ($($arg,)+) = __vals;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __cfg.cases, __msg, __dbg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n  right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), __l
        );
    }};
}

/// Rejects (skips) the current case if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(::core::stringify!($cond)),
            );
        }
    };
}

/// Picks one of several strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
