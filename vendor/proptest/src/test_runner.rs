//! Test configuration, case errors, and the deterministic test RNG.

/// Per-test configuration (only `cases` is meaningful in this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the test panics with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!`; the runner skips it.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Deterministic splitmix64 RNG; seeded per test from the test's path so
/// every run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash of the test path).
    pub fn deterministic_for(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        fn ranges_and_maps(x in 1u64..100, b in any::<bool>(), v in prop::collection::vec(0u8..4, 1..10)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 4));
            let _ = b;
        }
    }

    proptest! {
        fn oneof_and_prop_map(op in prop_oneof![
            3 => (0u8..4).prop_map(|x| x as u32),
            1 => Just(99u32).prop_map(|x| x),
        ]) {
            prop_assert!(op < 4 || op == 99);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic_for("x");
        let mut b = TestRng::deterministic_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
