//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny, deterministic implementation of the exact API subset it uses:
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`
//! (half-open and inclusive integer ranges plus float ranges) and
//! `Rng::gen_bool`. The generator is xoshiro256++ seeded via splitmix64, so
//! streams are high-quality and fully reproducible from a `u64` seed — which
//! is all the simulators require. It is **not** a cryptographic RNG and does
//! not reproduce upstream `rand` streams bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable via [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::sample(rng) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 range: every word is valid.
                    return u128::sample(rng) as $t;
                }
                let v = u128::sample(rng) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = u128::sample(rng) % span;
                (self.start as i128).wrapping_add(v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                let v = u128::sample(rng) % span;
                (lo as i128).wrapping_add(v as i128) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the RNG from a process-local entropy source.
    ///
    /// The vendored stand-in derives entropy from the system clock; use
    /// [`SeedableRng::seed_from_u64`] anywhere reproducibility matters.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u8..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = r.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
