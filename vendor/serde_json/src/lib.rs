//! Minimal offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back. Supports the workspace's API subset: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Numbers print without exponent
//! notation; floats use Rust's shortest-round-trip `Display`, so parsing a
//! dumped file reproduces the original bits.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // serde_json always marks floats as floats; keep "1.0" distinct from "1".
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Uint(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<u128>()
                .map(|x| Value::Int(-(x as i128)))
                .map_err(|_| self.err("integer overflow"))
        } else {
            text.parse::<u128>()
                .map(Value::Uint)
                .map_err(|_| self.err("integer overflow"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Map(vec![
            ("x".into(), Value::Uint(3)),
            ("y".into(), Value::Float(1.5)),
            ("s".into(), Value::Str("a\"b\n".into())),
            (
                "seq".into(),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::Int(-7)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"x\": 3"), "pretty output: {pretty}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let x: f64 = from_str("1e3").unwrap();
        assert_eq!(x, 1000.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
