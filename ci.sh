#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== dtl-check differential harness =="
cargo test -q -p dtl-check

echo "== diff_fuzz smoke (time-boxed) =="
cargo build --release -q -p dtl-bench --bin diff_fuzz
timeout 30 ./target/release/diff_fuzz --smoke

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== telemetry overhead guard (release) =="
cargo test -p dtl-telemetry --release --test overhead_guard -q -- --ignored

echo "ci: all green"
