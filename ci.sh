#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== dtl-event queue + determinism properties =="
cargo test -q -p dtl-event

echo "== dtl-dram power-policy + ladder properties =="
cargo test -q -p dtl-dram

echo "== dtl-check differential harness =="
cargo test -q -p dtl-check

echo "== dtl-pool orchestration suite =="
cargo test -q -p dtl-pool

echo "== dtl-fabric interconnect suite =="
cargo test -q -p dtl-fabric

echo "== smoke suite on the parallel path (--jobs 2) =="
cargo build --release -q -p dtl-bench --bin diff_fuzz --bin fault_campaign --bin pool_scale \
    --bin policy_ablation --bin vm_campaign --bin fabric_load --bin all
timeout 30 ./target/release/diff_fuzz --smoke --jobs 2
timeout 60 ./target/release/fault_campaign --tiny --jobs 2
timeout 30 ./target/release/pool_scale --tiny --jobs 2
timeout 30 ./target/release/policy_ablation --tiny --jobs 2 > /tmp/dtl_ci_policy.txt
timeout 30 ./target/release/vm_campaign --tiny --jobs 2
timeout 30 ./target/release/fabric_load --tiny --jobs 2 > /tmp/dtl_ci_fabric.txt

echo "== policy_ablation covers every PowerPolicy impl =="
for policy in FixedThreshold AdaptiveDemotion RefreshAware; do
    grep -q "$policy" /tmp/dtl_ci_policy.txt \
      || { echo "policy_ablation matrix lost $policy"; exit 1; }
done

echo "== fabric_load sweeps both placement variants =="
for variant in pack_one_switch spread_switches; do
    grep -q "$variant" /tmp/dtl_ci_fabric.txt \
      || { echo "fabric_load sweep lost $variant"; exit 1; }
done

echo "== windowed time-series output (--timeseries-out) =="
timeout 30 ./target/release/vm_campaign --tiny --jobs 2 \
    --timeseries-out /tmp/dtl_ci_series.csv --timeseries-width-s 3600
head -1 /tmp/dtl_ci_series.csv | grep -q '^window,start_ps,end_ps,standby_ps' \
  || { echo "time-series CSV header drifted"; exit 1; }

echo "== experiment registry vs src/bin/ drift =="
diff <(./target/release/all --list | sed 's/ — .*//' | sort) \
     <(ls crates/bench/src/bin | sed 's/\.rs$//' | grep -vx all | sort) \
  || { echo "registry and crates/bench/src/bin drifted apart"; exit 1; }

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== telemetry overhead guard (release) =="
cargo test -p dtl-telemetry --release --test overhead_guard -q -- --ignored

echo "ci: all green"
