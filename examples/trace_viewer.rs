//! Telemetry in action: replay a hotness campaign with a live event sink,
//! write the Chrome/Perfetto trace (one track per rank, power-state
//! residency spans plus migration/TSP/fault markers), and print the
//! reconstructed per-rank residency table.
//!
//! ```sh
//! cargo run --release --example trace_viewer
//! # then open trace_viewer.trace.json in https://ui.perfetto.dev
//! ```

use std::sync::Arc;

use dtl_sim::{run_hotness_traced, HotnessRunConfig};
use dtl_telemetry::{
    chrome_trace, jsonl, MetricsRegistry, PowerTimeline, RingSink, Telemetry, TelemetrySink,
};

fn main() {
    let cfg = HotnessRunConfig::tiny(1, true);
    println!(
        "replaying {} accesses over a {}-channel x {}-rank device with tracing on...",
        cfg.accesses, cfg.channels, cfg.active_ranks
    );

    let sink = Arc::new(RingSink::with_capacity(1 << 20));
    let registry = Arc::new(MetricsRegistry::new());
    let telemetry =
        Telemetry::new(sink.clone() as Arc<dyn TelemetrySink>).with_metrics(registry.clone());
    let result = run_hotness_traced(&cfg, &telemetry).expect("hotness replay");

    let events = sink.drain();
    // Close the timeline at the replay's end (not the last event) so
    // trailing self-refresh residency shows, and give every rank a track
    // even if it never left Standby.
    let mut timeline = PowerTimeline::new();
    for c in 0..cfg.channels {
        for r in 0..cfg.active_ranks {
            timeline.ensure_rank(c, r);
        }
    }
    for ev in &events {
        timeline.push_event(ev);
    }
    timeline.finish(result.duration.as_ps());

    let trace_path = "trace_viewer.trace.json";
    std::fs::write(trace_path, chrome_trace(&timeline, &events)).expect("write trace");
    std::fs::write("trace_viewer.events.jsonl", jsonl(&events)).expect("write JSONL");

    println!("\n{} events captured ({} dropped)", events.len(), sink.dropped());
    println!("per-rank power-state residency reconstructed from the event stream:\n");
    print!("{}", timeline.residency_table());
    println!(
        "\nstable-phase power {:.1} W, SR residency {:.1}%, {} segment swaps",
        result.stable_power_mw / 1000.0,
        result.sr_residency * 100.0,
        result.swaps_executed
    );
    println!("\nmetrics snapshot:\n{}", registry.render_text());
    println!("[trace saved {trace_path} — open in Perfetto or chrome://tracing]");
    println!("[raw events saved trace_viewer.events.jsonl]");
}
