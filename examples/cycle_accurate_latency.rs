//! Drive the cycle-accurate DDR4 simulator directly: compare the classic
//! rank-interleaved mapping against the DTL's rank-MSB mapping under a
//! CloudSuite-like load, and inspect the command stream.
//!
//! ```sh
//! cargo run --release --example cycle_accurate_latency
//! ```

use dtl_dram::AddressMapping;
use dtl_sim::experiments::latency_sweep::{measure, SweepConfig};
use dtl_sim::PerfModel;
use dtl_trace::WorkloadKind;

fn main() {
    let perf = PerfModel::cloudsuite();
    println!("workload              mapping           AMAT      row-hit  bandwidth  slowdown");
    for kind in
        [WorkloadKind::MediaStreaming, WorkloadKind::GraphAnalytics, WorkloadKind::WebSearch]
    {
        let spec = kind.spec();
        let mut base_amat = None;
        for (label, mapping) in [
            ("interleaved", AddressMapping::RankInterleaved),
            ("dtl-rank-msb", AddressMapping::dtl_default()),
        ] {
            let mut cfg = SweepConfig::paper(8, mapping, 0);
            cfg.requests = 20_000;
            let out = measure(&cfg, &spec);
            let base = *base_amat.get_or_insert(out.amat);
            let slowdown = perf.slowdown(spec.mapki, out.amat, base);
            println!(
                "{:<21} {:<14} {:>9.1}ns  {:>6.1}%  {:>6.1}GB/s  {:>7.3}",
                kind.name(),
                label,
                out.amat.as_ns_f64(),
                out.row_hit_fraction * 100.0,
                out.bandwidth / 1e9,
                slowdown,
            );
        }
    }
    println!("\nThe DTL mapping gives up rank interleaving but keeps channel and bank");
    println!("parallelism: the slowdown stays in low single digits (paper Figure 5),");
    println!("and in exchange whole ranks can be powered down.");
}
