//! Reliability extension demo: a rank starts throwing correctable-error
//! storms, and the DTL vacates it online — no host notices, no OS is
//! involved, the rank's data reappears at the same host physical
//! addresses backed by different DRAM.
//!
//! ```sh
//! cargo run --release --example rank_retirement
//! ```

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, MemoryBackend};
use dtl_dram::{AccessKind, Picos, PowerState};

fn main() -> Result<(), DtlError> {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.set_hotness_enabled(false);
    dev.register_host(HostId(0))?;

    // Two tenants with live data.
    let vm1 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let vm2 = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let probe = vm1.hpa_base(0, cfg.au_bytes);
    let before = dev.access(HostId(0), probe, AccessKind::Read, Picos::from_us(1))?;
    let sick = dev.geometry().location(before.dsn);
    println!(
        "tenant data at {probe} lives in segment {} (channel {}, rank {})",
        before.dsn, sick.channel, sick.rank
    );

    println!(
        "\n*** rank ch{}/rk{} reports an error storm: retiring it ***",
        sick.channel, sick.rank
    );
    dev.retire_rank(sick.channel, sick.rank, Picos::from_us(2))?;
    let mut t = Picos::from_us(3);
    while dev.migrations_pending() > 0 {
        t += Picos::from_ms(1);
        dev.tick(t)?;
    }
    dev.tick(t + Picos::from_ms(1))?;

    let after = dev.access(HostId(0), probe, AccessKind::Read, t + Picos::from_ms(2))?;
    let new_loc = dev.geometry().location(after.dsn);
    println!(
        "same HPA {probe} now resolves to segment {} (channel {}, rank {})",
        after.dsn, new_loc.channel, new_loc.rank
    );
    println!(
        "retired rank state: {:?}; segments drained: {}",
        dev.backend().rank_state(sick.channel, sick.rank),
        dev.migration_stats().completed
    );
    assert_eq!(dev.backend().rank_state(sick.channel, sick.rank), PowerState::Mpsm);
    assert_ne!((new_loc.channel, new_loc.rank), (sick.channel, sick.rank));

    // The other tenant never noticed either.
    dev.access(HostId(0), vm2.hpa_base(0, cfg.au_bytes), AccessKind::Read, t + Picos::from_ms(3))?;
    dev.check_invariants()?;
    println!("\nboth tenants keep running; the sick rank is out of service for good");
    Ok(())
}
