//! Hotness-aware self-refresh in action: replay a six-application mix
//! against an active-rank device and watch the DTL collect cold segments
//! into a victim rank and park it in self-refresh.
//!
//! ```sh
//! cargo run --release --example cold_data_self_refresh
//! ```

use dtl_sim::{hotness_savings, HotnessRunConfig};

fn main() {
    let cfg = HotnessRunConfig::paper_scaled(1, 6, 208.0 / 288.0);
    println!(
        "replaying {} accesses over a {}-channel x {}-rank device (1/{} scale, {}% allocated)...",
        cfg.accesses,
        cfg.channels,
        cfg.active_ranks,
        cfg.scale,
        (cfg.allocated_fraction * 100.0) as u32
    );
    let (off, on, saving) = hotness_savings(&cfg).expect("hotness replay");
    println!("\nwithout hotness-aware self-refresh:");
    println!("  stable-phase power: {:.1} W", off.stable_power_mw / 1000.0);
    println!("\nwith hotness-aware self-refresh:");
    println!("  stable-phase power: {:.1} W", on.stable_power_mw / 1000.0);
    println!("  self-refresh residency: {:.1}%", on.sr_residency * 100.0);
    println!(
        "  warmup (first SR entry): {}",
        on.first_sr_entry.map_or("never".to_string(), |t| t.to_string())
    );
    println!(
        "  SR entries/exits: {}/{}; segment migrations: {}",
        on.sr_entries, on.sr_exits, on.swaps_executed
    );
    println!("\nadditional stable-phase energy saving: {:.1}%", saving * 100.0);
}
