//! Fault-injection walkthrough: a seeded error storm batters one rank of a
//! pooled device while migration interruptions and link CRC corruption
//! fire in the background. The health tracker walks the victim through
//! `Healthy → Degraded → Draining → Retired`, the DTL vacates its data
//! online, and the link retry machinery absorbs the CRC faults — the host
//! sees latency, never corruption.
//!
//! ```sh
//! cargo run --release --example fault_storm
//! ```

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, RankHealth};
use dtl_cxl::{RetryEngine, RetryPolicy};
use dtl_dram::{AccessKind, Picos};
use dtl_fault::{FaultKind, FaultPlanConfig, StormConfig};

fn main() -> Result<(), DtlError> {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.set_hotness_enabled(false);
    dev.register_host(HostId(0))?;

    // A tenant with live data; find the rank backing it.
    let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    let probe = vm.hpa_base(0, cfg.au_bytes);
    let before = dev.access(HostId(0), probe, AccessKind::Read, Picos::from_us(1))?;
    let victim = dev.geometry().location(before.dsn);
    println!("tenant data lives in ch{}/rk{}", victim.channel, victim.rank);

    // A deterministic fault plan: background ECC noise everywhere, a storm
    // pinned to the victim, link CRC corruption, and two migration
    // interruptions. Same seed, same plan, same outcome — always.
    let mut plan_cfg = FaultPlanConfig::quiet(42, Picos::from_ms(60), 2, 4);
    plan_cfg.correctable_per_rank_per_sec = 20.0;
    plan_cfg.link_crc_per_sec = 100.0;
    plan_cfg.link_crc_max_burst = 5;
    plan_cfg.migration_interrupts = 2;
    plan_cfg.storm = Some(StormConfig {
        channel: victim.channel,
        rank: victim.rank,
        start: Picos::from_ms(10),
        events: 25,
        spacing: Picos::from_us(300),
        correctable_ratio: 0.8,
    });
    let plan = plan_cfg.generate();
    println!("fault plan: {} events over 60 ms", plan.len());

    let mut injector = plan.injector();
    let mut link = RetryEngine::new(RetryPolicy::default());
    let mut last_health = RankHealth::Healthy;
    let mut t = Picos::from_us(2);
    while t < Picos::from_ms(60) {
        t += Picos::from_us(250);
        for ev in injector.pop_due(t) {
            match ev.kind {
                FaultKind::CorrectableEcc { channel, rank } => {
                    dev.inject_correctable_error(channel, rank, t)?;
                }
                FaultKind::UncorrectableEcc { channel, rank } => {
                    let report = dev.inject_uncorrectable_error(channel, rank, t)?;
                    println!(
                        "  {t}: uncorrectable error on ch{channel}/rk{rank} — {} segments at risk",
                        report.segments_at_risk
                    );
                }
                FaultKind::LinkCrc { burst } => {
                    link.inject_crc_burst(burst);
                    link.on_submit_at(t);
                }
                FaultKind::MigrationInterrupt { channel } => {
                    let outcome = dev.inject_migration_interrupt(channel, t)?;
                    println!("  {t}: migration interrupt on ch{channel}: {outcome:?}");
                }
            }
            // Crash consistency: the mapping machinery survives every fault.
            dev.check_invariants()?;
        }
        let health = dev.rank_health(victim.channel, victim.rank);
        if health != last_health {
            println!("  {t}: victim rank ch{}/rk{} -> {health:?}", victim.channel, victim.rank);
            last_health = health;
        }
        dev.tick(t)?;
    }

    let after = dev.access(HostId(0), probe, AccessKind::Read, t)?;
    let new_loc = dev.geometry().location(after.dsn);
    println!(
        "\nsame HPA {probe} now resolves to ch{}/rk{} — the storm never reached the tenant",
        new_loc.channel, new_loc.rank
    );
    assert_eq!(dev.rank_health(victim.channel, victim.rank), RankHealth::Retired);
    assert_ne!((new_loc.channel, new_loc.rank), (victim.channel, victim.rank));

    let errors = dev.health_stats();
    let retry = link.stats();
    println!(
        "errors: {} correctable, {} uncorrectable; auto-retirements: {}",
        errors.correctable_errors,
        errors.uncorrectable_errors,
        dev.stats().auto_retirements
    );
    println!(
        "link: {} CRC errors absorbed by {} replays ({} retry time, {:.0} pJ)",
        retry.crc_errors, retry.retries, retry.retry_time, retry.retry_energy_pj
    );
    println!(
        "migrations: {} interrupted, {} rolled back",
        dev.stats().migration_interrupts,
        dev.migration_stats().rollbacks
    );
    dev.check_invariants()?;
    Ok(())
}
