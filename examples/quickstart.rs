//! Quickstart: build a small DTL-equipped CXL memory device, run a VM
//! through its lifecycle, and watch rank-level power-down reclaim the
//! background power.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, MemoryBackend};
use dtl_dram::{AccessKind, Picos, PowerState};

fn main() -> Result<(), DtlError> {
    // A scaled-down device: 2 channels x 4 ranks x 32 segments of 256 KiB.
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    dev.register_host(HostId(0))?;

    // A "VM" asks for one allocation unit of memory.
    let vm = dev.alloc_vm(HostId(0), cfg.au_bytes, Picos::ZERO)?;
    println!("allocated VM {} with {} AU(s), {} bytes", vm.handle, vm.aus.len(), vm.bytes);

    // The host reads and writes through host physical addresses; the DTL
    // translates to device segments behind the scenes.
    let base = vm.hpa_base(0, cfg.au_bytes);
    let mut t = Picos::from_us(1);
    for k in 0..8u64 {
        let out =
            dev.access(HostId(0), base.offset_by(k * cfg.segment_bytes), AccessKind::Read, t)?;
        println!(
            "  read  hpa+{:>8} -> {} (translated via {:?}, +{})",
            k * cfg.segment_bytes,
            out.dsn,
            out.smc,
            out.translation_latency
        );
        t += Picos::from_us(1);
    }

    // Deallocate: the DTL consolidates free capacity and powers ranks down.
    dev.dealloc_vm(vm.handle, t)?;
    for _ in 0..50 {
        t += Picos::from_ms(1);
        dev.tick(t)?;
    }
    let mut down = 0;
    for c in 0..2 {
        for r in 0..4 {
            if dev.backend().rank_state(c, r) == PowerState::Mpsm {
                down += 1;
            }
        }
    }
    println!(
        "after deallocation: {down}/8 ranks in maximum power saving mode \
         ({} rank groups powered down)",
        dev.powerdown_stats().groups_powered_down
    );

    let report = dev.power_report(t);
    println!(
        "energy so far: {:.3} mJ background + {:.3} mJ active",
        report.total.background_mj,
        report.total.active_mj()
    );
    dev.check_invariants()?;
    println!("device invariants hold; see EXPERIMENTS.md for the full evaluation");
    Ok(())
}
