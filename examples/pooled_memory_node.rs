//! A day in the life of a pooled-memory node: synthesize an Azure-like VM
//! schedule, replay it against the DTL device with and without rank-level
//! power-down, and print the runtime power trace the paper's Figure 12
//! shows.
//!
//! ```sh
//! cargo run --release --example pooled_memory_node
//! ```

use dtl_sim::{run_schedule, PowerDownRunConfig};

fn main() {
    let seed = 7;
    let cfg = PowerDownRunConfig {
        duration_min: 120, // two hours is plenty for a demo
        ..PowerDownRunConfig::paper(seed, true)
    };
    println!("replaying a {}-minute VM schedule on a 384 GB CXL device...", cfg.duration_min);
    let baseline =
        run_schedule(&PowerDownRunConfig { powerdown: false, ..cfg }).expect("baseline replay");
    let dtl = run_schedule(&cfg).expect("DTL replay");

    println!("\n  t(min)  committed(GB)  ranks  baseline(W)  dtl(W)");
    for (b, d) in baseline.intervals.iter().zip(dtl.intervals.iter()) {
        println!(
            "  {:>5}  {:>12.1}  {:>5}  {:>11.1}  {:>6.1}{}",
            b.t_min,
            b.committed_bytes as f64 / (1u64 << 30) as f64,
            d.active_ranks,
            b.power_mw / 1000.0,
            d.power_mw / 1000.0,
            if d.migrating { "  <- migrating" } else { "" },
        );
    }
    let saving = 1.0 - dtl.total_energy_mj / baseline.total_energy_mj;
    println!(
        "\nDRAM energy: baseline {:.1} kJ, DTL {:.1} kJ -> {:.1}% saved \
         ({} rank groups powered down, {} segments drained, {} wakes)",
        baseline.total_energy_mj / 1e6,
        dtl.total_energy_mj / 1e6,
        saving * 100.0,
        dtl.groups_powered_down,
        dtl.segments_drained,
        dtl.groups_woken,
    );
}
