//! A rack-scale memory pool shared by three compute hosts: pack-for-power
//! placement, per-host quotas, a whole-device retirement with lossless
//! failover, and the pool-wide snapshot an operator would watch — all on
//! top of `dtl-pool` instead of hand-rolling the orchestration per caller.
//!
//! ```sh
//! cargo run --release --example multi_host_pool
//! ```

use dtl_core::HostId;
use dtl_dram::{AccessKind, Picos, PowerState};
use dtl_pool::{AnalyticMemoryPool, MemoryPool, PoolConfig, PoolError};

fn print_pool(pool: &AnalyticMemoryPool, label: &str) {
    let snap = pool.snapshot();
    println!("\n== {label} ==");
    for d in &snap.devices {
        println!(
            "  {}: {}/{} — {} AUs allocated, {} free, {} link retries",
            d.id,
            d.health.label(),
            d.coord.label(),
            d.allocated_aus,
            d.free_aus,
            d.link.retries
        );
    }
    let mpsm = snap.rank_residency[PowerState::Mpsm as usize];
    println!(
        "  {} VMs, {} mapped segments, {} evacuations in flight, MPSM residency {:.1} ms",
        snap.vms,
        snap.mapped_segments,
        snap.evacuations_pending,
        mpsm.as_secs_f64() * 1e3
    );
}

fn main() -> Result<(), PoolError> {
    let cfg = PoolConfig::tiny(3);
    let au = cfg.dtl.au_bytes;
    let mut pool = MemoryPool::analytic(cfg)?;
    for h in 0..3 {
        pool.register_host(HostId(h))?;
    }
    // Host 2 is a noisy neighbor: cap it at 2 AUs pool-wide.
    pool.set_host_quota(HostId(2), Some(2))?;

    let mut now = Picos::from_us(1);
    let a = pool.alloc_vm(HostId(0), 3 * au, now)?;
    let b = pool.alloc_vm(HostId(1), 2 * au, now)?;
    let c = pool.alloc_vm(HostId(2), 2 * au, now)?;
    print_pool(&pool, "three tenants up (packed for power)");

    // The capped host wants more and is refused at admission.
    match pool.alloc_vm(HostId(2), au, now) {
        Err(e) => println!("\nhost2 denied: {e}"),
        Ok(_) => unreachable!("quota must gate this"),
    }

    // Every tenant's memory is reachable; the CXL link charges its
    // round-trip on each access.
    let hit = pool.access(a, 0, AccessKind::Read, now)?;
    println!("VM {a} offset 0 served by {} (+{} ps link)", hit.device, hit.link_delay.as_ps());

    // The device carrying the packed load is lost to maintenance: the
    // pool retires it and evacuates every shard to the survivors.
    let victim = hit.device;
    pool.retire_device(victim, now)?;
    for _ in 0..200 {
        now += Picos::from_ms(1);
        pool.tick(now)?;
        if pool.evacuations_pending() == 0 {
            break;
        }
    }
    print_pool(&pool, "after retiring the loaded device (shards evacuated)");
    pool.assert_all_reachable(now)?;
    println!("\nevery allocation unit of every VM is still reachable");

    // Two tenants leave; the coordinator re-packs the pool and parks what
    // it drains, and each device's own engine powers rank groups down.
    pool.dealloc_vm(b, now)?;
    pool.dealloc_vm(c, now)?;
    for _ in 0..200 {
        now += Picos::from_ms(1);
        pool.tick(now)?;
    }
    print_pool(&pool, "after departures (idle devices parked)");

    let energy = pool.pool_energy(now);
    println!(
        "\npool DRAM energy so far: {:.1} mJ ({:.1} mJ background); stats: {} evacuations, {} parks",
        energy.total_mj(),
        energy.background_mj,
        pool.stats().evacuations_completed,
        pool.stats().devices_parked
    );
    pool.check_invariants()?;
    Ok(())
}
