//! A pooled CXL memory device shared by three compute hosts: per-host
//! quotas, ballooning, and the management-plane snapshot a pool operator
//! would watch.
//!
//! ```sh
//! cargo run --release --example multi_host_pool
//! ```

use dtl_core::{DtlConfig, DtlDevice, DtlError, HostId, HotnessRole};
use dtl_dram::Picos;

fn print_pool(dev: &DtlDevice<dtl_core::AnalyticBackend>, label: &str) {
    let snap = dev.snapshot();
    println!("\n== {label} ==");
    for h in &snap.hosts {
        println!("  {}: {} VMs, {} AUs mapped", h.host, h.vms, h.aus);
    }
    for r in &snap.ranks {
        let role = match r.hotness {
            HotnessRole::SelfRefreshing => " [self-refresh]",
            HotnessRole::Victim => " [hotness victim]",
            HotnessRole::None => "",
        };
        let errors = if r.correctable_errors + r.uncorrectable_errors > 0 {
            format!(" ({}c/{}u errors)", r.correctable_errors, r.uncorrectable_errors)
        } else {
            String::new()
        };
        println!(
            "  ch{}/rk{}: {:?}/{:?}/{:?} {}live/{}free{}{}",
            r.channel,
            r.rank,
            r.power,
            r.lifecycle,
            r.health,
            r.allocated_segments,
            r.free_segments,
            role,
            errors
        );
    }
    println!(
        "  mapped segments: {}; migrations pending: {}; errors: {}c/{}u",
        snap.mapped_segments,
        snap.migrations_pending,
        snap.errors.correctable_errors,
        snap.errors.uncorrectable_errors
    );
}

fn main() -> Result<(), DtlError> {
    let cfg = DtlConfig::tiny();
    let mut dev = DtlDevice::with_analytic_geometry(cfg, 2, 4, 32);
    for h in 0..3 {
        dev.register_host(HostId(h))?;
    }
    // Host 2 is a noisy neighbor: cap it at 2 AUs.
    dev.set_host_quota(HostId(2), Some(2))?;

    let mut now = Picos::from_us(1);
    let a = dev.alloc_vm(HostId(0), 2 * cfg.au_bytes, now)?;
    let b = dev.alloc_vm(HostId(1), cfg.au_bytes, now)?;
    let c = dev.alloc_vm(HostId(2), 2 * cfg.au_bytes, now)?;
    print_pool(&dev, "three tenants up");

    // The capped host wants more and is refused; host 1 balloons instead.
    match dev.alloc_vm(HostId(2), cfg.au_bytes, now) {
        Err(e) => println!("\nhost2 denied: {e}"),
        Ok(_) => unreachable!("quota must gate this"),
    }
    dev.grow_vm(b.handle, cfg.au_bytes, now)?;
    print_pool(&dev, "after host1 ballooned up");

    // A rank reports sparse correctable errors — the operator sees the
    // counters climb while the leaky bucket keeps the rank Healthy.
    dev.inject_correctable_error(1, 0, now)?;
    dev.inject_correctable_error(1, 0, now + Picos::from_us(1))?;
    print_pool(&dev, "after two correctable errors on ch1/rk0 (still Healthy)");

    // Two tenants leave; the pool consolidates and powers ranks down.
    dev.dealloc_vm(a.handle, now)?;
    dev.dealloc_vm(c.handle, now)?;
    for _ in 0..100 {
        now += Picos::from_ms(1);
        dev.tick(now)?;
    }
    print_pool(&dev, "after departures (rank groups in MPSM)");

    let report = dev.power_report(now);
    println!(
        "\nbackground energy so far: {:.1} mJ (all-standby would be {:.1} mJ)",
        report.total.background_mj,
        1250.0 * 8.0 * now.as_secs_f64()
    );
    dev.check_invariants()?;
    Ok(())
}
